"""The JSON-lines wire protocol of the recognition service.

One request or response per line, UTF-8 JSON. Requests carry a ``type``:

``event``
    ``{"type": "event", "session": S, "time": T, "term": "entersArea(v1, a3)"}``
    — one input event for session ``S``. Successful ingest is *not*
    acknowledged (set ``"ack": true`` to force a reply); rejections always
    are, with ``"error": "backpressure"`` and a ``retry_after`` hint in
    seconds once the session's ingest queue passes its high-water mark.
``events``
    ``{"type": "events", "session": S, "batch": [[T, "term"], ...]}`` —
    the batched form; a batch is accepted or rejected atomically.
``fluent``
    ``{"type": "fluent", "session": S, "fvp": "proximity(v1, v2)=true",
    "intervals": [[s, e], ...]}`` — maximal intervals of a durative input.
``query``
    ``{"type": "query", "session": S}`` — the amalgamated detections.
    Optional ``"at": T`` first advances the session to query time ``T``;
    optional ``"fvp": "..."`` restricts the reply to one fluent-value pair.
``checkpoint``
    ``{"type": "checkpoint", "session": S}`` — snapshot the session's
    windowed state to a versioned file; replies with the path.
``status``
    ``{"type": "status"}`` — per-session counters (ingested, applied,
    rejected, windows, queue depth/high-water, last query time, ...).
``shutdown``
    ``{"type": "shutdown"}`` — stop the service after draining (the
    protocol is trusted: the service binds to operator-chosen endpoints).

Responses are ``{"ok": true, ...}`` or
``{"ok": false, "error": CODE, "message": ...}``.

Events are routed by parsing their term; ground flat terms — the shape of
every real input stream — take a fast path that skips the full Prolog
reader, keeping the ingest budget per event in single-digit microseconds.
"""

from __future__ import annotations

import json
from typing import Any, AsyncIterator, Dict, Optional, Tuple

from repro.logic.parser import ParseError, parse_term
from repro.logic.terms import Compound, Term, intern_constant, is_ground

__all__ = [
    "MAX_LINE_BYTES",
    "ProtocolError",
    "decode_line",
    "encode",
    "error_response",
    "ok_response",
    "parse_event_term",
    "read_protocol_lines",
    "require_intervals",
    "require_session",
    "require_time",
]

#: Above this many bytes per line, the reader rejects the line (with a
#: structured ``oversized`` error) instead of buffering it.
MAX_LINE_BYTES = 1 << 20

#: Read granularity of :func:`read_protocol_lines`.
_CHUNK_BYTES = 1 << 16


class ProtocolError(ValueError):
    """A malformed protocol line or field; carries a machine-readable code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one request line; raises :class:`ProtocolError` on junk."""
    try:
        message = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError("bad-json", "not a JSON line: %s" % exc)
    if not isinstance(message, dict):
        raise ProtocolError("bad-json", "expected a JSON object per line")
    kind = message.get("type")
    if not isinstance(kind, str):
        raise ProtocolError("bad-request", "missing message 'type'")
    return message


async def read_protocol_lines(
    reader: "Any", limit: int = MAX_LINE_BYTES
) -> AsyncIterator[Optional[bytes]]:
    """Yield request lines from an asyncio stream reader, surviving junk.

    Unlike ``StreamReader.readline`` with a ``limit`` — which raises and
    leaves the stream misframed mid-line — this scanner reads in chunks,
    splits on newlines itself, and on an oversized line *discards up to the
    next newline* and yields ``None`` exactly once, so the caller can send
    a structured rejection and keep the connection. Ordinary lines are
    yielded without their trailing newline; empty lines are skipped. The
    final unterminated line (EOF without a newline) is yielded as-is.
    """
    buffer = bytearray()
    overflowed = False
    while True:
        chunk = await reader.read(_CHUNK_BYTES)
        if not chunk:
            break
        buffer.extend(chunk)
        start = 0
        while True:
            newline = buffer.find(b"\n", start)
            if newline < 0:
                break
            line = bytes(buffer[start:newline])
            start = newline + 1
            if overflowed:
                # ``line`` is the tail of a line whose head was already
                # discarded: report the oversize, drop the fragment.
                overflowed = False
                yield None
            elif len(line) > limit:
                yield None
            elif line:
                yield line
        if start:
            del buffer[:start]
        if len(buffer) > limit:
            buffer.clear()
            overflowed = True
    if overflowed:
        yield None
    elif len(buffer) > limit:
        yield None
    elif buffer:
        yield bytes(buffer)


def encode(message: Dict[str, Any]) -> bytes:
    """One response line, compact and key-sorted so output is stable."""
    return json.dumps(message, sort_keys=True, separators=(",", ":")).encode() + b"\n"


def ok_response(**fields: Any) -> Dict[str, Any]:
    response: Dict[str, Any] = {"ok": True}
    response.update(fields)
    return response


def error_response(code: str, message: str, **fields: Any) -> Dict[str, Any]:
    response: Dict[str, Any] = {"ok": False, "error": code, "message": message}
    response.update(fields)
    return response


# -- event term parsing --------------------------------------------------------

#: Cache of already-parsed event terms. Real streams repeat ground terms
#: (the same vessel re-enters the same area); numeric arguments keep the
#: hit rate from being perfect, so the cache is bounded.
_TERM_CACHE: Dict[str, Term] = {}
_TERM_CACHE_LIMIT = 65536


def parse_event_term(text: str) -> Term:
    """A ground event term from concrete syntax, on the ingest fast path.

    Flat terms (``functor(arg, ...)`` with atomic arguments, or a bare
    atom) are assembled directly; anything nested, quoted or otherwise
    unusual falls back to the full parser. The result is always checked to
    be ground — a term with variables is a protocol error, not an event.
    """
    cached = _TERM_CACHE.get(text)
    if cached is not None:
        return cached
    term = _parse_flat(text)
    if term is None:
        try:
            term = parse_term(text)
        except ParseError as exc:
            raise ProtocolError("bad-term", "unparsable event term %r: %s" % (text, exc))
    if not is_ground(term):
        raise ProtocolError("bad-term", "event terms must be ground: %r" % text)
    if len(_TERM_CACHE) >= _TERM_CACHE_LIMIT:
        _TERM_CACHE.clear()
    _TERM_CACHE[text] = term
    return term


def _parse_flat(text: str) -> Optional[Term]:
    """``functor(a, b, 1.5)`` or a bare atom; ``None`` defers to the parser."""
    stripped = text.strip()
    if not stripped or not stripped[0].islower():
        return None
    open_paren = stripped.find("(")
    if open_paren < 0:
        if _is_plain_atom(stripped):
            return intern_constant(stripped)
        return None
    if not stripped.endswith(")"):
        return None
    functor = stripped[:open_paren]
    if not _is_plain_atom(functor):
        return None
    body = stripped[open_paren + 1 : -1]
    if any(ch in body for ch in "()[]'\""):
        return None
    args = []
    for chunk in body.split(","):
        argument = _parse_atomic(chunk.strip())
        if argument is None:
            return None
        args.append(argument)
    if not args:
        return None
    return Compound(functor, tuple(args))


def _parse_atomic(chunk: str) -> Optional[Term]:
    if not chunk:
        return None
    head = chunk[0]
    if head.islower():
        if _is_plain_atom(chunk):
            return intern_constant(chunk)
        return None
    if head.isdigit() or head in "+-.":
        try:
            return intern_constant(int(chunk))
        except ValueError:
            pass
        try:
            return intern_constant(float(chunk))
        except ValueError:
            return None
    return None


def _is_plain_atom(name: str) -> bool:
    return bool(name) and name[0].islower() and all(
        ch.isalnum() or ch == "_" for ch in name
    )


# -- field validation ----------------------------------------------------------


def require_session(message: Dict[str, Any]) -> str:
    name = message.get("session")
    if not isinstance(name, str) or not name:
        raise ProtocolError("bad-request", "missing 'session' name")
    return name


def require_time(value: Any) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError("bad-request", "event 'time' must be an integer")
    if value < 0:
        raise ProtocolError("bad-request", "event 'time' must be non-negative")
    return value


def require_intervals(value: Any) -> "list[Tuple[int, int]]":
    if not isinstance(value, list):
        raise ProtocolError("bad-request", "'intervals' must be a list of [start, end]")
    pairs = []
    for item in value:
        if (
            not isinstance(item, (list, tuple))
            or len(item) != 2
            or not all(isinstance(bound, int) for bound in item)
        ):
            raise ProtocolError("bad-request", "'intervals' must be [start, end] pairs")
        pairs.append((item[0], item[1]))
    return pairs
