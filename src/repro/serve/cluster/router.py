"""The cluster router: placement, forwarding, heartbeats, failover.

The router owns two listening sockets. The *control* port accepts exactly
one connection per worker — the worker dials in, registers, and the same
socket then carries router-originated protocol requests (heartbeat
``status`` polls, ``attach``/``detach``, ``shutdown``), one request/reply
at a time under a per-worker lock. The *data* port speaks the ordinary
JSON-lines protocol to clients; every session-addressed line is decoded
just enough to read its ``session``, routed (rendezvous hashing over the
live workers, so a worker's death reshuffles only its own sessions), and
forwarded *verbatim* to the owning worker over a per-client upstream
connection. Worker responses stream back verbatim on the same path, so a
cluster is byte-compatible with a single process — per-connection FIFO
order included, which the load generator's sentinel accounting relies on.

Three router-level behaviours sit on top of forwarding:

* **status merge** — a client ``status`` is never forwarded as-is; the
  router fans it out to every live worker (through the client's own
  upstreams where they exist, so the reply orders after all previously
  forwarded traffic; over the control channel otherwise) and replies with
  the union of all sessions plus a ``workers`` section of per-worker
  liveness, session counts and last-heartbeat queue depths.
* **load shedding** — heartbeat status snapshots carry per-session queue
  depths; when a worker's deepest queue passes ``shed_queue_depth``, new
  events routed to it are rejected at the router with the same
  ``backpressure``/``retry_after`` shape workers use, propagating worker
  high-water marks to clients without a worker round-trip.
* **failover** — a worker that misses heartbeats, drops its control
  connection, or whose process dies is declared dead: each of its
  sessions is re-placed by rendezvous among the survivors and attached
  there with ``restore`` (latest checkpoint) and a bumped fencing lease.
  While a session moves, its traffic is held at a migration gate instead
  of being bounced — clients see added latency, not errors.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import sys
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Set

from repro import telemetry
from repro.rtec.partition import rendezvous_owner
from repro.serve.cluster.engines import EngineSpec
from repro.serve.cluster.worker import worker_main
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_line,
    encode,
    error_response,
    ok_response,
    read_protocol_lines,
    require_session,
)
from repro.serve.sessions import SessionConfig

__all__ = ["ClusterRouter", "WorkerHandle"]

#: Message types carrying a ``session`` that are forwarded to workers.
_ROUTED = frozenset({"event", "events", "fluent", "query", "checkpoint"})

#: Protocol error codes counted as ``protocol.reject`` (mirrors the server).
_REJECT_CODES = frozenset({"bad-json", "oversized"})


@dataclass
class WorkerHandle:
    """The router's view of one worker process."""

    worker_id: str
    port: int = 0
    pid: int = 0
    process: Optional[Any] = None
    reader: Optional["asyncio.StreamReader"] = None
    writer: Optional["asyncio.StreamWriter"] = None
    lock: "asyncio.Lock" = field(default_factory=asyncio.Lock)
    alive: bool = False
    sessions: Set[str] = field(default_factory=set)
    missed_heartbeats: int = 0
    last_status: Dict[str, Any] = field(default_factory=dict)
    registered: "asyncio.Event" = field(default_factory=asyncio.Event)

    async def control_request(
        self, message: Dict[str, Any], timeout: float = 30.0
    ) -> Dict[str, Any]:
        """One request/reply round-trip on the control channel."""
        if self.reader is None or self.writer is None:
            raise ConnectionError("worker %s has no control channel" % self.worker_id)
        async with self.lock:
            self.writer.write(encode(message))
            await self.writer.drain()
            line = await asyncio.wait_for(self.reader.readline(), timeout)
        if not line:
            raise ConnectionError("worker %s closed its control channel" % self.worker_id)
        return json.loads(line)

    def queue_depth(self) -> int:
        """Deepest session ingest queue at the last heartbeat."""
        depth = 0
        for status in self.last_status.get("sessions", {}).values():
            depth = max(depth, int(status.get("queue_depth", 0)))
        return depth


class _Upstream:
    """One router→worker data connection serving one client connection."""

    def __init__(
        self, worker_id: str, reader: "asyncio.StreamReader", writer: "asyncio.StreamWriter"
    ) -> None:
        self.worker_id = worker_id
        self.reader = reader
        self.writer = writer
        #: Futures awaiting router-originated ``status`` replies, FIFO.
        self.status_waiters: Deque["asyncio.Future[Dict[str, Any]]"] = deque()
        #: Forwarded lines still expecting a reply (acked ingest, queries).
        self.pending_replies = 0
        self.pump: Optional["asyncio.Task[None]"] = None


class ClusterRouter:
    """Spawn, place, forward, heartbeat, and fail over a worker fleet."""

    def __init__(
        self,
        engine_spec: EngineSpec,
        config: SessionConfig,
        workers: int = 2,
        checkpoint_dir: Optional[str] = None,
        heartbeat_interval: float = 1.0,
        heartbeat_misses: int = 3,
        shed_queue_depth: Optional[int] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.engine_spec = engine_spec
        self.config = config
        self.checkpoint_dir = checkpoint_dir
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_misses = heartbeat_misses
        self.shed_queue_depth = shed_queue_depth
        self.workers: Dict[str, WorkerHandle] = {
            "w%d" % index: WorkerHandle("w%d" % index) for index in range(workers)
        }
        self.routes: Dict[str, str] = {}
        self.leases: Dict[str, int] = {}
        #: Per-session placement weights (static cost from the description's
        #: analysis certificate). Sessions absent from the map fall back to
        #: the fleet default weight, which is certified lazily from the
        #: engine spec — so a homogeneous fleet (every session running the
        #: same description) degenerates exactly to session counting.
        self.session_weights: Dict[str, float] = {}
        self._default_weight: Optional[float] = None
        #: Migration gates: present while a session is moving; traffic waits.
        self.gates: Dict[str, "asyncio.Event"] = {}
        self.shutdown_requested: "asyncio.Event" = asyncio.Event()
        self._control_server: Optional[asyncio.AbstractServer] = None
        self._data_server: Optional[asyncio.AbstractServer] = None
        self._heartbeat_task: Optional["asyncio.Task[None]"] = None
        self._failing_over: Set[str] = set()

    # -- lifecycle -------------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Spawn the fleet, await registrations, open the data port."""
        self._control_server = await asyncio.start_server(
            self._handle_registration, host, 0, limit=MAX_LINE_BYTES
        )
        control_port = self._control_server.sockets[0].getsockname()[1]
        context = multiprocessing.get_context("spawn")
        for handle in self.workers.values():
            process = context.Process(
                target=worker_main,
                args=(
                    handle.worker_id,
                    host,
                    control_port,
                    self.engine_spec.to_dict(),
                    _config_payload(self.config),
                    self.checkpoint_dir,
                ),
                daemon=True,
            )
            process.start()
            handle.process = process
        await asyncio.gather(
            *(
                asyncio.wait_for(handle.registered.wait(), timeout=60.0)
                for handle in self.workers.values()
            )
        )
        self._data_server = await asyncio.start_server(
            self._handle_client, host, port, limit=MAX_LINE_BYTES
        )
        self._heartbeat_task = asyncio.get_running_loop().create_task(self._heartbeat())
        return self._data_server.sockets[0].getsockname()[1]

    async def serve(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Serve until a ``shutdown`` request (or signal) arrives, then stop."""
        bound = await self.start(host, port)
        print(
            "serving RTEC recognition on %s:%d (%d workers)"
            % (host, bound, len(self.workers)),
            file=sys.stderr,
        )
        await self.shutdown_requested.wait()
        await self.stop()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT request a graceful stop (workers checkpoint)."""
        import signal

        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.shutdown_requested.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                break

    async def stop(self) -> None:
        """Graceful cluster stop: every worker checkpoints and exits."""
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            try:
                await self._heartbeat_task
            except asyncio.CancelledError:
                pass
            self._heartbeat_task = None
        if self._data_server is not None:
            self._data_server.close()
            await self._data_server.wait_closed()
            self._data_server = None
        for handle in self.workers.values():
            if not handle.alive:
                continue
            try:
                await handle.control_request({"type": "shutdown"}, timeout=60.0)
            except (ConnectionError, asyncio.TimeoutError, ValueError):
                pass
            handle.alive = False
        loop = asyncio.get_running_loop()
        for handle in self.workers.values():
            if handle.writer is not None:
                handle.writer.close()
                handle.writer = None
            process = handle.process
            if process is not None:
                await loop.run_in_executor(None, process.join, 30)
                if process.is_alive():
                    process.kill()
                    await loop.run_in_executor(None, process.join, 5)
                handle.process = None
        if self._control_server is not None:
            self._control_server.close()
            await self._control_server.wait_closed()
            self._control_server = None

    # -- registration & heartbeats ---------------------------------------------

    async def _handle_registration(
        self, reader: "asyncio.StreamReader", writer: "asyncio.StreamWriter"
    ) -> None:
        try:
            line = await reader.readline()
            message = decode_line(line)
            if message.get("type") != "register":
                raise ProtocolError("bad-request", "expected a 'register' message")
            worker_id = message.get("worker")
            handle = self.workers.get(worker_id) if isinstance(worker_id, str) else None
            if handle is None:
                raise ProtocolError("bad-request", "unknown worker %r" % worker_id)
            handle.port = int(message.get("port", 0))
            handle.pid = int(message.get("pid", 0))
            handle.reader = reader
            handle.writer = writer
            handle.alive = True
            writer.write(encode(ok_response(type="registered", worker=worker_id)))
            await writer.drain()
            handle.registered.set()
            # The connection stays open as the control channel; replies are
            # read inside control_request, never here.
        except (ProtocolError, ValueError, ConnectionError) as exc:
            try:
                writer.write(encode(error_response("bad-request", str(exc))))
                await writer.drain()
                writer.close()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _heartbeat(self) -> None:
        while True:
            await asyncio.sleep(self.heartbeat_interval)
            dead: List[str] = []
            for handle in self.workers.values():
                if not handle.alive:
                    continue
                if handle.process is not None and not handle.process.is_alive():
                    dead.append(handle.worker_id)
                    continue
                if handle.lock.locked():
                    # A control exchange (attach, detach, shutdown) is in
                    # flight; don't queue a poll behind a long checkpoint.
                    continue
                try:
                    status = await handle.control_request(
                        {"type": "status"}, timeout=10.0
                    )
                    handle.last_status = status
                    handle.missed_heartbeats = 0
                except (ConnectionError, asyncio.TimeoutError, ValueError):
                    handle.missed_heartbeats += 1
                    if handle.missed_heartbeats >= self.heartbeat_misses:
                        dead.append(handle.worker_id)
            for worker_id in dead:
                telemetry.count("cluster.worker_deaths")
                await self.failover(worker_id)

    # -- placement & migration -------------------------------------------------

    def live_workers(self) -> List[str]:
        return sorted(wid for wid, handle in self.workers.items() if handle.alive)

    def placement(self) -> Dict[str, List[str]]:
        """Current session placement, worker id → sorted session names."""
        return {
            wid: sorted(handle.sessions) for wid, handle in self.workers.items()
        }

    def session_weight(self, session: str) -> float:
        """The placement weight of one session.

        Explicit per-session weights (``session_weights``) win; otherwise
        the fleet default applies: the static cost of the engine spec's
        description, certified once (``repro.analysis.certify``) and cached.
        Certificate weights are always positive, so with a homogeneous
        fleet weighted placement is *identical* to session counting — the
        weights only start steering once descriptions (and their certified
        costs) differ.
        """
        weight = self.session_weights.get(session)
        if weight is not None:
            return weight if weight > 0 else 1.0
        if self._default_weight is None:
            self._default_weight = 1.0
            try:
                engine = self.engine_spec.create()
                self._default_weight = engine.certificate().placement_weight
            except Exception:  # pragma: no cover - placement must never fail
                pass
        return self._default_weight

    def worker_load(self, worker_id: str) -> float:
        """Summed certified weight of the sessions a worker hosts."""
        return sum(
            self.session_weight(session)
            for session in self.workers[worker_id].sessions
        )

    def _place(self, session: str) -> str:
        """Load-aware rendezvous: least-loaded live workers, hash tie-break.

        Pure rendezvous hashing balances poorly at fleet-scale-few (four
        sessions can all land on one of two workers); restricting the hash
        to the currently least-loaded workers bounds the load imbalance
        while keeping placement deterministic and affinity-preserving for
        everything the hash does decide. Load is the summed *certified
        static cost* of each worker's sessions (see :meth:`session_weight`),
        seeding cost-aware placement before any runtime telemetry exists.
        """
        live = self.live_workers()
        if not live:
            raise RuntimeError("no live workers to place sessions on")
        low = min(self.worker_load(wid) for wid in live)
        candidates = [wid for wid in live if self.worker_load(wid) <= low]
        return rendezvous_owner(session, candidates)

    async def assign_sessions(self, names: List[str], restore: bool = False) -> None:
        """Pre-attach ``names`` across the fleet, balanced and deterministic."""
        for name in names:
            if name in self.routes:
                continue
            await self._attach(name, self._place(name), restore=restore)

    async def _attach(self, session: str, worker_id: str, restore: bool) -> None:
        handle = self.workers[worker_id]
        lease = self.leases.setdefault(session, 1)
        reply = await handle.control_request({
            "type": "attach",
            "session": session,
            "restore": restore,
            "lease": lease,
        })
        if not reply.get("ok"):
            raise RuntimeError(
                "attach of %r on %s failed: %r" % (session, worker_id, reply)
            )
        handle.sessions.add(session)
        self.routes[session] = worker_id

    async def migrate(self, session: str, worker_id: str) -> None:
        """Move one session: detach (graceful checkpoint), attach, bump lease.

        Traffic for the session is held at a gate for the duration — the
        client sees latency, not errors (the old worker would answer with
        a retryable rejection anyway if a line slipped through).
        """
        if self.checkpoint_dir is None:
            raise RuntimeError("migration needs a checkpoint_dir to carry state")
        current = self.routes.get(session)
        if current == worker_id:
            return
        if current is None:
            raise RuntimeError("session %r is not placed anywhere" % session)
        gate = asyncio.Event()
        self.gates[session] = gate
        try:
            old = self.workers[current]
            reply = await old.control_request({"type": "detach", "session": session})
            if not reply.get("ok"):
                raise RuntimeError(
                    "detach of %r from %s failed: %r" % (session, current, reply)
                )
            old.sessions.discard(session)
            self.leases[session] = self.leases.get(session, 1) + 1
            await self._attach(session, worker_id, restore=True)
            telemetry.count("cluster.migrations")
        finally:
            del self.gates[session]
            gate.set()

    async def rebalance(self) -> int:
        """Re-place every session as a fresh balanced assignment would.

        Recomputes the load-aware rendezvous placement of all sessions (in
        sorted order, over empty weighted loads) and migrates each session
        that sits elsewhere; returns how many moved. Deterministic, and a
        no-op for a fleet that is already balanced.
        """
        live = self.live_workers()
        loads = {wid: 0.0 for wid in live}
        targets: Dict[str, str] = {}
        for session in sorted(self.routes):
            low = min(loads.values())
            candidates = [wid for wid in live if loads[wid] <= low]
            target = rendezvous_owner(session, candidates)
            targets[session] = target
            loads[target] += self.session_weight(session)
        moved = 0
        for session, target in sorted(targets.items()):
            if self.routes.get(session) != target:
                await self.migrate(session, target)
                moved += 1
        return moved

    # -- failure handling ------------------------------------------------------

    async def kill_worker(self, worker_id: str) -> None:
        """Drill: SIGKILL one worker, then restore its sessions elsewhere."""
        handle = self.workers[worker_id]
        process = handle.process
        if process is not None and process.is_alive():
            process.kill()
            await asyncio.get_running_loop().run_in_executor(None, process.join, 30)
        await self.failover(worker_id)

    async def failover(self, worker_id: str) -> List[str]:
        """Declare ``worker_id`` dead; restore its sessions onto survivors.

        Every orphaned session is re-placed by rendezvous among the live
        workers and attached with ``restore`` (latest checkpoint) under a
        bumped lease, so a zombie instance of the dead worker can never
        overwrite the new owner's checkpoints.
        """
        if worker_id in self._failing_over:
            return []
        self._failing_over.add(worker_id)
        try:
            handle = self.workers[worker_id]
            handle.alive = False
            if handle.writer is not None:
                handle.writer.close()
                handle.writer = None
                handle.reader = None
            orphaned = sorted(handle.sessions)
            handle.sessions = set()
            if not orphaned:
                return []
            survivors = self.live_workers()
            if not survivors:
                raise RuntimeError(
                    "worker %s died with no survivors to restore onto" % worker_id
                )
            for session in orphaned:
                gate = asyncio.Event()
                self.gates[session] = gate
                try:
                    self.routes.pop(session, None)
                    self.leases[session] = self.leases.get(session, 1) + 1
                    await self._attach(session, self._place(session), restore=True)
                    telemetry.count("cluster.failovers")
                finally:
                    del self.gates[session]
                    gate.set()
            return orphaned
        finally:
            self._failing_over.discard(worker_id)

    # -- data plane ------------------------------------------------------------

    async def _route(self, session: str) -> WorkerHandle:
        """The live worker owning ``session``, attaching on demand."""
        while True:
            gate = self.gates.get(session)
            if gate is not None:
                await gate.wait()
                continue
            worker_id = self.routes.get(session)
            if worker_id is None:
                await self._attach(
                    session,
                    self._place(session),
                    restore=self.checkpoint_dir is not None,
                )
                continue
            handle = self.workers[worker_id]
            if handle.alive:
                return handle
            # Routed to a worker that just died: wait for failover to
            # re-place it (the heartbeat task or kill_worker drives that).
            await asyncio.sleep(self.heartbeat_interval / 2)

    def _shedding(self, handle: WorkerHandle) -> bool:
        if self.shed_queue_depth is None:
            return False
        return handle.queue_depth() >= self.shed_queue_depth

    async def _handle_client(
        self, reader: "asyncio.StreamReader", writer: "asyncio.StreamWriter"
    ) -> None:
        upstreams: Dict[str, _Upstream] = {}
        try:
            async for line in read_protocol_lines(reader, MAX_LINE_BYTES):
                if self.shutdown_requested.is_set():
                    break
                if line is None:
                    telemetry.count("protocol.reject")
                    writer.write(encode(error_response(
                        "oversized", "line exceeds %d bytes" % MAX_LINE_BYTES
                    )))
                    continue
                if line.isspace():
                    continue
                response = await self._dispatch_client_line(line, writer, upstreams)
                if response is not None:
                    writer.write(encode(response))
                    if writer.transport.get_write_buffer_size() > MAX_LINE_BYTES:
                        await writer.drain()
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            for upstream in upstreams.values():
                if upstream.pump is not None:
                    upstream.pump.cancel()
                try:
                    upstream.writer.close()
                except (ConnectionResetError, BrokenPipeError, RuntimeError):
                    pass
            try:
                writer.close()
            except (ConnectionResetError, BrokenPipeError, RuntimeError):
                pass

    async def _dispatch_client_line(
        self,
        line: bytes,
        writer: "asyncio.StreamWriter",
        upstreams: Dict[str, _Upstream],
    ) -> Optional[Dict[str, Any]]:
        try:
            message = decode_line(line)
            kind = message["type"]
            if kind in _ROUTED:
                session = require_session(message)
                handle = await self._route(session)
                if kind in ("event", "events") and self._shedding(handle):
                    telemetry.count("cluster.shed")
                    return error_response(
                        "backpressure",
                        "worker %s is saturated" % handle.worker_id,
                        retry_after=self.config.retry_after,
                        seq=message.get("seq"),
                    )
                upstream = await self._upstream(handle, writer, upstreams)
                if message.get("ack") or kind in ("query", "checkpoint"):
                    upstream.pending_replies += 1
                upstream.writer.write(line + b"\n")
                if upstream.writer.transport.get_write_buffer_size() > MAX_LINE_BYTES:
                    await upstream.writer.drain()
                telemetry.count("cluster.forwarded")
                return None
            if kind == "status":
                return await self._merged_status(writer, upstreams)
            if kind == "shutdown":
                self.shutdown_requested.set()
                return ok_response(type="shutdown")
            raise ProtocolError("bad-request", "unknown message type %r" % kind)
        except ProtocolError as exc:
            if exc.code in _REJECT_CODES:
                telemetry.count("protocol.reject")
            return error_response(exc.code, exc.message)
        except (ConnectionError, asyncio.TimeoutError) as exc:
            return error_response(
                "backpressure",
                "cluster is reconfiguring: %s" % exc,
                retry_after=self.config.retry_after,
            )
        except Exception as exc:  # noqa: BLE001 - a bad request must not kill the router
            return error_response("internal", "%s: %s" % (exc.__class__.__name__, exc))

    async def _upstream(
        self,
        handle: WorkerHandle,
        client_writer: "asyncio.StreamWriter",
        upstreams: Dict[str, _Upstream],
    ) -> _Upstream:
        upstream = upstreams.get(handle.worker_id)
        if upstream is not None:
            return upstream
        reader, writer = await asyncio.open_connection("127.0.0.1", handle.port)
        upstream = _Upstream(handle.worker_id, reader, writer)
        upstream.pump = asyncio.get_running_loop().create_task(
            self._pump(upstream, client_writer)
        )
        upstreams[handle.worker_id] = upstream
        return upstream

    async def _pump(
        self, upstream: _Upstream, client_writer: "asyncio.StreamWriter"
    ) -> None:
        """Forward one worker's responses to the client, verbatim.

        The only router-originated traffic on an upstream is the ``status``
        fan-out, so a status-shaped reply resolves the oldest waiter
        instead of reaching the client. On connection loss with replies
        still owed (the worker died mid-drill), synthesized retryable
        rejections unblock a stop-and-wait client, which then retries
        through the re-routed path.
        """
        try:
            async for line in read_protocol_lines(upstream.reader, MAX_LINE_BYTES):
                if line is None:
                    continue
                if b'"type":"status"' in line and upstream.status_waiters:
                    waiter = upstream.status_waiters.popleft()
                    if not waiter.done():
                        waiter.set_result(json.loads(line))
                    continue
                if upstream.pending_replies > 0:
                    upstream.pending_replies -= 1
                client_writer.write(line + b"\n")
                if client_writer.transport.get_write_buffer_size() > MAX_LINE_BYTES:
                    await client_writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        while upstream.status_waiters:
            waiter = upstream.status_waiters.popleft()
            if not waiter.done():
                waiter.set_exception(
                    ConnectionError("worker %s connection lost" % upstream.worker_id)
                )
        if upstream.pending_replies > 0:
            rejection = encode(error_response(
                "backpressure",
                "worker %s connection lost" % upstream.worker_id,
                retry_after=self.config.retry_after,
            ))
            try:
                for _ in range(upstream.pending_replies):
                    client_writer.write(rejection)
                await client_writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass
            upstream.pending_replies = 0

    async def _merged_status(
        self,
        client_writer: "asyncio.StreamWriter",
        upstreams: Dict[str, _Upstream],
    ) -> Dict[str, Any]:
        """Fan a client ``status`` out to the fleet and merge the replies.

        Workers this client has traffic in flight to are polled *through
        those upstreams*, so the reply orders after every previously
        forwarded line — preserving the single-process sentinel guarantee
        that a status response proves all prior rejections were delivered.
        """
        pending: List["asyncio.Future[Dict[str, Any]]"] = []
        polled: Set[str] = set()
        for upstream in upstreams.values():
            handle = self.workers.get(upstream.worker_id)
            if handle is None or not handle.alive:
                continue
            waiter: "asyncio.Future[Dict[str, Any]]" = (
                asyncio.get_running_loop().create_future()
            )
            upstream.status_waiters.append(waiter)
            upstream.writer.write(encode({"type": "status"}))
            await upstream.writer.drain()
            pending.append(waiter)
            polled.add(upstream.worker_id)
        sessions: Dict[str, Any] = {}
        replies = await asyncio.gather(*pending, return_exceptions=True)
        for reply in replies:
            if isinstance(reply, BaseException):
                continue
            sessions.update(reply.get("sessions", {}))
        for worker_id, handle in self.workers.items():
            if worker_id in polled or not handle.alive:
                continue
            try:
                reply = await handle.control_request({"type": "status"}, timeout=30.0)
            except (ConnectionError, asyncio.TimeoutError, ValueError):
                continue
            sessions.update(reply.get("sessions", {}))
        workers = {
            worker_id: {
                "alive": handle.alive,
                "pid": handle.pid,
                "port": handle.port,
                "sessions": len(handle.sessions),
                "queue_depth": handle.queue_depth(),
                "ingested": sum(
                    int(status.get("ingested", 0))
                    for status in handle.last_status.get("sessions", {}).values()
                ),
            }
            for worker_id, handle in self.workers.items()
        }
        return ok_response(
            type="status",
            sessions=sessions,
            workers=workers,
            checkpoint_dir=self.checkpoint_dir,
        )


def _config_payload(config: SessionConfig) -> Dict[str, Any]:
    """A JSON-able ``SessionConfig`` for the spawn boundary."""
    from dataclasses import asdict

    return asdict(config)
