"""Kill-a-worker drills: replay a workload through a live cluster.

:func:`run_cluster_replay` is the cluster counterpart of
:func:`repro.serve.replay.run_replay` — but where the single-process drill
kills the *whole service*, this one kills an entire *worker process* with
SIGKILL mid-run, lets the router restore the victim's sessions from their
checkpoints onto the survivors (bumped leases and all), resumes ingest
from the restored ``applied`` offsets, and with ``verify=True`` compares
the final detections byte-for-byte against an uninterrupted single-process
served run and against the direct :class:`~repro.rtec.session.RTECSession`
reference — the distributed tier's strongest end-to-end statement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.rtec.engine import RTECEngine
from repro.rtec.result import RecognitionResult
from repro.serve.cluster.engines import EngineSpec
from repro.serve.cluster.router import ClusterRouter
from repro.serve.loadgen import LoadReport, ServiceClient, Workload, run_ingest
from repro.serve.replay import (
    applied_event_offsets,
    reference_merged,
    resume_workload,
    run_replay,
)
from repro.serve.sessions import SessionConfig

__all__ = ["ClusterReplayOutcome", "run_cluster_replay"]


@dataclass
class ClusterReplayOutcome:
    """What a cluster replay run produced and measured."""

    first_pass: LoadReport
    resumed_pass: Optional[LoadReport]
    merged: RecognitionResult
    workers: int
    killed_worker: Optional[str]
    killed_at_event: Optional[int]
    #: Sessions the failover restored onto survivors, with their new owners.
    restored_sessions: Dict[str, str] = field(default_factory=dict)
    placement: Dict[str, List[str]] = field(default_factory=dict)
    verified: Optional[bool] = None
    verify_detail: str = ""

    @property
    def final_report(self) -> LoadReport:
        return self.resumed_pass if self.resumed_pass is not None else self.first_pass


def _pick_victim(router: ClusterRouter) -> str:
    """The live worker owning the most sessions (deterministic tie-break)."""
    best: Optional[str] = None
    for worker_id in router.live_workers():
        owned = len(router.workers[worker_id].sessions)
        if owned == 0:
            continue
        if best is None or owned > len(router.workers[best].sessions):
            best = worker_id
    if best is None:
        raise RuntimeError("no live worker owns any session; nothing to kill")
    return best


async def run_cluster_replay(
    engine_spec: EngineSpec,
    workload: Workload,
    config: SessionConfig,
    workers: int = 4,
    checkpoint_dir: Optional[str] = None,
    kill_at: Optional[float] = None,
    verify: bool = False,
    batch_size: int = 512,
    mode: str = "batched",
) -> ClusterReplayOutcome:
    """Pump ``workload`` through a worker fleet; optionally kill one worker.

    ``kill_at`` is the fraction of events after which one whole worker —
    the one owning the most sessions — is SIGKILLed. Requires a
    ``checkpoint_dir`` and ``config.checkpoint_every > 0``: the router
    restores the victim's sessions from their latest checkpoints onto the
    survivors, and ingest resumes from the restored ``applied`` offsets
    exactly as the single-process drill does.
    """
    kill_index: Optional[int] = None
    if kill_at is not None:
        if checkpoint_dir is None or config.checkpoint_every <= 0:
            raise ValueError("kill_at needs checkpoint_dir and checkpoint_every > 0")
        kill_index = max(0, min(len(workload.events), int(len(workload.events) * kill_at)))
    router = ClusterRouter(
        engine_spec, config, workers=workers, checkpoint_dir=checkpoint_dir
    )
    resumed_pass: Optional[LoadReport] = None
    killed_worker: Optional[str] = None
    restored: Dict[str, str] = {}
    try:
        port = await router.start()
        await router.assign_sessions(list(workload.sessions))
        client = await ServiceClient.connect("127.0.0.1", port)
        try:
            if kill_index is None:
                first_pass = await run_ingest(
                    client, workload, mode=mode, batch_size=batch_size
                )
                merged = first_pass.merged_result()
            else:
                truncated = Workload(
                    sessions=workload.sessions,
                    fluents=workload.fluents,
                    events=workload.events[:kill_index],
                    end_time=workload.end_time,
                )
                # Phase 1 is fully acknowledged before the kill, so the
                # victim dies idle — what its checkpoints miss is exactly
                # what the resume pass re-sends.
                first_pass = await run_ingest(
                    client, truncated, mode=mode, batch_size=batch_size,
                    final_query=False,
                )
                killed_worker = _pick_victim(router)
                orphaned = sorted(router.workers[killed_worker].sessions)
                await router.kill_worker(killed_worker)
                restored = {name: router.routes[name] for name in orphaned}
                offsets = await applied_event_offsets(client, workload)
                resumed = resume_workload(workload, offsets)
                resumed_pass = await run_ingest(
                    client, resumed, mode=mode, batch_size=batch_size
                )
                merged = resumed_pass.merged_result()
        finally:
            await client.close()
        placement = router.placement()
    finally:
        await router.stop()
    outcome = ClusterReplayOutcome(
        first_pass=first_pass,
        resumed_pass=resumed_pass,
        merged=merged,
        workers=workers,
        killed_worker=killed_worker,
        killed_at_event=kill_index,
        restored_sessions=restored,
        placement=placement,
    )
    if verify:
        await _verify(outcome, engine_spec, workload, config, mode, batch_size)
    return outcome


async def _verify(
    outcome: ClusterReplayOutcome,
    engine_spec: EngineSpec,
    workload: Workload,
    config: SessionConfig,
    mode: str,
    batch_size: int,
) -> None:
    """Byte-equality against an uninterrupted single-process served run."""

    def engine_factory() -> Dict[str, RTECEngine]:
        return {name: engine_spec.create() for name in workload.sessions}

    uninterrupted = await run_replay(
        engine_factory, workload, config, mode=mode, batch_size=batch_size
    )
    expected = uninterrupted.merged.to_json()
    actual = outcome.merged.to_json()
    details = []
    if actual == expected:
        details.append("cluster run matches uninterrupted single-process run")
        outcome.verified = True
    else:
        details.append("MISMATCH versus uninterrupted single-process run")
        outcome.verified = False
    reference = reference_merged(engine_factory, workload, config)
    if actual == reference.to_json():
        details.append("matches direct RTECSession reference")
    else:
        details.append("MISMATCH versus direct RTECSession reference")
        outcome.verified = False
    outcome.verify_detail = "; ".join(details)
