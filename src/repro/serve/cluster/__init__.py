"""Distributed serve tier: a router in front of shared-nothing workers.

Where :mod:`repro.serve` hosts every session in one process,
:mod:`repro.serve.cluster` splits the fleet across N worker *processes*
(one event loop, one :class:`~repro.serve.sessions.SessionManager` each)
behind a :class:`~repro.serve.cluster.router.ClusterRouter` speaking the
same JSON-lines protocol, so clients cannot tell a cluster from a single
process. Placement reuses :mod:`repro.rtec.partition`: sessions are
entity-closed groups already, and the router maps each session to a
worker by rendezvous hashing, so co-dependent entities always share a
process and a dead worker reshuffles only its own sessions.

The control plane (registration, heartbeats, ``attach``/``detach``
verbs, checkpoint leases) lives in :mod:`~repro.serve.cluster.worker`
and :mod:`~repro.serve.cluster.router`; kill-a-worker drills in
:mod:`~repro.serve.cluster.replay`; picklable engine recipes for spawned
workers in :mod:`~repro.serve.cluster.engines`.
"""

from repro.serve.cluster.engines import (
    EngineSpec,
    fleet_engine,
    gold_engine_spec,
    maritime_engine,
    soak_description,
    soak_engine,
)
from repro.serve.cluster.replay import ClusterReplayOutcome, run_cluster_replay
from repro.serve.cluster.router import ClusterRouter, WorkerHandle
from repro.serve.cluster.worker import WorkerServer, worker_main

__all__ = [
    "ClusterReplayOutcome",
    "ClusterRouter",
    "EngineSpec",
    "WorkerHandle",
    "WorkerServer",
    "fleet_engine",
    "gold_engine_spec",
    "maritime_engine",
    "run_cluster_replay",
    "soak_description",
    "soak_engine",
    "worker_main",
]
