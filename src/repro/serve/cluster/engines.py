"""Picklable engine recipes for spawned worker processes.

A worker process cannot receive a live :class:`~repro.rtec.engine.RTECEngine`
(engines hold parsed rule structures, knowledge bases and caches that are
not worth pickling, and each session must get a *fresh* engine anyway).
Instead the router ships an :class:`EngineSpec` — a dotted ``module:callable``
path plus JSON-able keyword arguments — and every worker builds engines
locally, once per attached session. The heavyweight parts (gold event
descriptions, synthetic dataset knowledge bases) are cached per process
under :func:`functools.lru_cache`, so attaching the hundredth session
costs one engine construction, not one dataset build.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Dict

from repro.rtec.description import EventDescription
from repro.rtec.engine import RTECEngine

__all__ = [
    "EngineSpec",
    "fleet_engine",
    "gold_engine_spec",
    "maritime_engine",
    "soak_description",
    "soak_engine",
]


@dataclass
class EngineSpec:
    """A portable recipe for building fresh engines in any process.

    ``factory`` is a dotted path ``package.module:callable``; ``kwargs``
    must be JSON-able (they cross a process boundary). Calling
    :meth:`create` resolves the callable and invokes it — once per
    session, so factories must return a *new* engine each call.
    """

    factory: str
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def create(self) -> RTECEngine:
        module_name, _, attribute = self.factory.partition(":")
        if not attribute:
            raise ValueError(
                "engine factory %r is not of the form 'module:callable'" % self.factory
            )
        module = importlib.import_module(module_name)
        try:
            builder = getattr(module, attribute)
        except AttributeError:
            raise ValueError(
                "engine factory %r does not exist in %s" % (attribute, module_name)
            )
        engine = builder(**self.kwargs)
        if not isinstance(engine, RTECEngine):
            raise TypeError(
                "engine factory %r returned %r, not an RTECEngine"
                % (self.factory, type(engine).__name__)
            )
        return engine

    def to_dict(self) -> Dict[str, Any]:
        return {"factory": self.factory, "kwargs": dict(self.kwargs)}


# -- gold dataset engines ------------------------------------------------------


@lru_cache(maxsize=None)
def _fleet_parts() -> Any:
    from repro.fleet import build_fleet_dataset, fleet_gold_event_description

    return build_fleet_dataset(), fleet_gold_event_description()


def fleet_engine() -> RTECEngine:
    """A fresh engine over the fleet gold (dataset build cached per process)."""
    dataset, description = _fleet_parts()
    return RTECEngine(description, dataset.kb, dataset.vocabulary)


@lru_cache(maxsize=4)
def _maritime_parts(seed: int, scale: float, traffic: int) -> Any:
    from repro.maritime import build_dataset, gold_event_description

    return build_dataset(seed=seed, scale=scale, traffic=traffic), gold_event_description()


def maritime_engine(seed: int = 0, scale: float = 1.0, traffic: int = 6) -> RTECEngine:
    """A fresh engine over the maritime gold (dataset build cached per process)."""
    dataset, description = _maritime_parts(seed, scale, traffic)
    return RTECEngine(description, dataset.kb, dataset.vocabulary)


def gold_engine_spec(gold: str, **kwargs: Any) -> EngineSpec:
    """The :class:`EngineSpec` for one of the repo's gold descriptions."""
    if gold == "fleet":
        return EngineSpec("repro.serve.cluster.engines:fleet_engine")
    if gold == "maritime":
        return EngineSpec("repro.serve.cluster.engines:maritime_engine", dict(kwargs))
    raise ValueError("unknown gold %r (expected 'fleet' or 'maritime')" % gold)


# -- soak engine ---------------------------------------------------------------

#: A deliberately tiny, perfectly shardable event description for
#: millions-of-sessions soak runs: per-entity state machines with no
#: background knowledge, so per-event recognition cost is minimal and the
#: load generator measures the serving fabric, not the rules.
SOAK_RULES = """
initiatedAt(active(E)=true, T) :- happensAt(start(E), T).
terminatedAt(active(E)=true, T) :- happensAt(stop(E), T).
initiatedAt(surge(E)=true, T) :-
    happensAt(spike(E), T),
    holdsAt(active(E)=true, T).
terminatedAt(surge(E)=true, T) :- happensAt(stop(E), T).
maxDuration(surge(E)=true, 120).
"""


@lru_cache(maxsize=1)
def soak_description() -> EventDescription:
    return EventDescription.from_text(SOAK_RULES)


def soak_engine() -> RTECEngine:
    """A fresh engine over the soak rules (no knowledge base needed)."""
    return RTECEngine(soak_description(), strict=False)
