"""One shared-nothing worker: a SessionManager host with control verbs.

A worker is a spawned process running :func:`worker_main`: it binds the
ordinary JSON-lines data protocol on an ephemeral loopback port, dials the
router's control port, registers (``{"type": "register", "worker": ...,
"port": ..., "pid": ...}``), and then serves *the same dispatch loop* on
that control connection — so the router can issue any protocol message
(heartbeat ``status`` polls, ``attach``/``detach``, ``shutdown``) over the
channel the worker opened, with no listening port on the router's side of
the relationship.

Control verbs extending the base protocol:

``attach``
    ``{"type": "attach", "session": S, "restore": bool, "lease": int}`` —
    host session ``S``, building a fresh engine from the worker's
    :class:`~repro.serve.cluster.engines.EngineSpec`. With ``restore`` the
    latest checkpoint is adopted; ``lease`` fences subsequent checkpoint
    writes (the router bumps it on every ownership transfer). Replies with
    the session's ``applied``/``windows`` counters so the router learns
    the resume offset.
``detach``
    ``{"type": "detach", "session": S}`` — stop the session's worker task
    (which writes its graceful final checkpoint) and drop it. The name is
    remembered: later data traffic for a detached session is answered
    with a retryable ``backpressure`` rejection instead of
    ``no-such-session``, so a load generator racing a migration simply
    retries onto the new owner.

Worker death is the router's business (heartbeats, process liveness); the
worker itself shuts down when told to — or when its control connection
drops, so an orphaned worker never outlives its router.
"""

from __future__ import annotations

import asyncio
import os
from typing import Any, Dict, Optional

from repro import telemetry
from repro.serve.cluster.engines import EngineSpec
from repro.serve.protocol import (
    ProtocolError,
    encode,
    error_response,
    ok_response,
    require_session,
)
from repro.serve.server import RecognitionServer
from repro.serve.sessions import SessionConfig, SessionManager

__all__ = ["WorkerServer", "worker_main"]


class WorkerServer(RecognitionServer):
    """A recognition server that also understands ``attach``/``detach``."""

    def __init__(
        self,
        manager: SessionManager,
        engine_spec: EngineSpec,
        default_config: SessionConfig,
    ) -> None:
        super().__init__(manager)
        self.engine_spec = engine_spec
        self.default_config = default_config
        #: Sessions migrated off this worker; traffic for them is told to
        #: retry (the router has already re-routed by then).
        self.detached: Dict[str, bool] = {}

    async def dispatch(self, message: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        kind = message["type"]
        if kind == "attach":
            return await self._attach(message)
        if kind == "detach":
            return await self._detach(message)
        if kind in ("event", "events", "fluent", "query", "checkpoint"):
            name = message.get("session")
            if isinstance(name, str) and name in self.detached:
                return error_response(
                    "backpressure",
                    "session %r migrated off this worker" % name,
                    retry_after=self.default_config.retry_after,
                    seq=message.get("seq"),
                )
        return await super().dispatch(message)

    async def _attach(self, message: Dict[str, Any]) -> Dict[str, Any]:
        name = require_session(message)
        lease = message.get("lease")
        if lease is not None and (isinstance(lease, bool) or not isinstance(lease, int)):
            raise ProtocolError("bad-request", "attach 'lease' must be an integer")
        if name in self.manager.sessions:
            raise ProtocolError("session-exists", "session %r is already hosted" % name)
        managed = self.manager.add_session(
            name,
            self.engine_spec.create(),
            self.default_config,
            restore=bool(message.get("restore", False)),
            lease=lease,
        )
        managed.start()
        self.detached.pop(name, None)
        telemetry.count("cluster.attach")
        return ok_response(
            type="attached",
            session=name,
            applied=managed.counters.applied,
            windows=managed.counters.windows,
            lease=managed.lease,
        )

    async def _detach(self, message: Dict[str, Any]) -> Dict[str, Any]:
        name = require_session(message)
        managed = await self.manager.remove_session(name)
        self.detached[name] = True
        telemetry.count("cluster.detach")
        return ok_response(
            type="detached",
            session=name,
            applied=managed.counters.applied,
            windows=managed.counters.windows,
            checkpoints=managed.counters.checkpoints,
        )


async def _worker_async(
    worker_id: str,
    router_host: str,
    control_port: int,
    spec_payload: Dict[str, Any],
    config_payload: Dict[str, Any],
    checkpoint_dir: Optional[str],
) -> None:
    manager = SessionManager(checkpoint_dir=checkpoint_dir, owner=worker_id)
    server = WorkerServer(
        manager, EngineSpec(**spec_payload), SessionConfig(**config_payload)
    )
    # Signals are often delivered to the whole process group (Ctrl-C,
    # systemd stop): each worker must turn them into a graceful stop —
    # final checkpoints included — rather than dying on the default
    # disposition before the router can say "shutdown".
    server.install_signal_handlers()
    data_port = await server.start_tcp("127.0.0.1", 0)
    reader, writer = await asyncio.open_connection(router_host, control_port)
    writer.write(encode({
        "type": "register",
        "worker": worker_id,
        "port": data_port,
        "pid": os.getpid(),
    }))
    await writer.drain()
    ack = await reader.readline()
    if not ack:
        raise ConnectionError("router closed the control connection during registration")
    # From here the registration socket doubles as the control channel:
    # the router writes protocol requests, this worker's ordinary dispatch
    # loop answers them.
    control = asyncio.ensure_future(server.handle_connection(reader, writer))
    shutdown = asyncio.ensure_future(server.shutdown_requested.wait())
    await asyncio.wait({control, shutdown}, return_when=asyncio.FIRST_COMPLETED)
    if not control.done():
        control.cancel()
        try:
            await control
        except asyncio.CancelledError:
            pass
    shutdown.cancel()
    # Graceful exit either way (shutdown verb or router loss): stop() drains
    # every session worker, each writing its final checkpoint.
    await server.stop()


def worker_main(
    worker_id: str,
    router_host: str,
    control_port: int,
    spec_payload: Dict[str, Any],
    config_payload: Dict[str, Any],
    checkpoint_dir: Optional[str] = None,
) -> None:
    """Spawn entry point: run one worker until shutdown or router loss."""
    asyncio.run(_worker_async(
        worker_id, router_host, control_port, spec_payload, config_payload,
        checkpoint_dir,
    ))
