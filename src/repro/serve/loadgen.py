"""Workload construction and load generation for the recognition service.

The load generator turns a recognition dataset into protocol traffic:

* :func:`build_workload` splits a dataset's stream across ``sessions``
  tenants by entity component (re-using the partitionability analysis of
  :mod:`repro.rtec.partition`, so co-dependent entities — a proximity
  pair, a tug and its tow — always land in the same session) and can tile
  the stream ``repeat`` times along the timeline for sustained load;
* :class:`ServiceClient` is a minimal asyncio JSON-lines client with
  backpressure-aware retries;
* :func:`run_ingest` pumps a workload through a live service and measures
  sustained ingest (events/second accepted, rejections, retries), then
  collects the final detections with ``query`` messages.

Two pumping modes:

``batched`` (default)
    stop-and-wait batches of ``events`` messages with acks: a rejected
    batch is re-sent after ``retry_after``, so the applied order equals
    the workload order exactly — the mode replay verification uses.
``firehose``
    one fire-and-forget ``event`` line per event, rejections correlated
    by ``seq`` and re-sent after the first pass. Duplicates cannot arise
    (only rejected events are re-sent) but late retries may be applied
    after later events; RTEC's windowing tolerates that, and this mode
    measures the per-message ceiling of the ingest path.
"""

from __future__ import annotations

import asyncio
import json
import random
import time as _time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.logic.pretty import term_to_str
from repro.rtec.description import EventDescription
from repro.rtec.result import RecognitionResult
from repro.rtec.stream import EventStream, InputFluents, partition_input

__all__ = [
    "Workload",
    "build_soak_workload",
    "build_workload",
    "ServiceClient",
    "LoadReport",
    "run_ingest",
]


@dataclass
class Workload:
    """Protocol traffic derived from a dataset, ready to pump."""

    sessions: List[str]
    #: (session, fvp text, [[start, end], ...]) — delivered before events.
    fluents: List[Tuple[str, str, List[List[int]]]]
    #: (session, time, term text) in global time order.
    events: List[Tuple[str, int, str]]
    #: Highest event time (drives the final query).
    end_time: int


def build_workload(
    stream: EventStream,
    input_fluents: Optional[InputFluents],
    description: EventDescription,
    sessions: int = 1,
    session_prefix: str = "s",
    repeat: int = 1,
    limit: Optional[int] = None,
) -> Workload:
    """Split a dataset across ``sessions`` tenants, optionally tiled in time.

    With ``sessions > 1`` the entity components of the stream are assigned
    round-robin; entity-free (global) items are replicated to every
    session, whose identical derivations merge idempotently — the same
    argument that makes entity-sharded recognition exact. Descriptions
    with ``initially/1`` declarations cannot be split this way (each
    session would assert every entity's initial state) and are rejected.

    ``repeat`` tiles the stream ``repeat`` times along the timeline,
    shifting each copy past the previous one — sustained-load runs from a
    finite recording. ``limit`` truncates the final event list.
    """
    if sessions < 1:
        raise ValueError("sessions must be >= 1")
    if input_fluents is None:
        input_fluents = InputFluents()
    names = [
        "%s%d" % (session_prefix, index) if sessions > 1 else session_prefix
        for index in range(sessions)
    ]
    if sessions == 1:
        routed_events = [(names[0], event.time, term_to_str(event.term)) for event in stream]
        routed_fluents = [
            (names[0], term_to_str(pair), [[iv.start, iv.end] for iv in intervals])
            for pair, intervals in input_fluents.items()
        ]
    else:
        if description.initial_fvps:
            raise ValueError(
                "cannot split a description with initially/1 declarations "
                "across sessions"
            )
        analysis = description.partitionability()
        if not analysis.shardable:
            raise ValueError(
                "event description is not entity-shardable; serve it as a "
                "single session: " + "; ".join(analysis.diagnostics)
            )
        shards, global_events, global_fluents, _global_initials = partition_input(
            stream, input_fluents, analysis
        )
        tagged: List[Tuple[int, "Any", str]] = []  # (time, event, session)
        routed_fluents = []
        for index, shard in enumerate(shards):
            name = names[index % sessions]
            for event in shard.events:
                tagged.append((event.time, event, name))
            for pair, intervals in shard.fluents.items():
                routed_fluents.append(
                    (name, term_to_str(pair), [[iv.start, iv.end] for iv in intervals])
                )
        for event in global_events:
            for name in names:
                tagged.append((event.time, event, name))
        for pair, intervals in global_fluents.items():
            pairs = [[iv.start, iv.end] for iv in intervals]
            for name in names:
                routed_fluents.append((name, term_to_str(pair), pairs))
        tagged.sort(key=lambda item: (item[0], repr(item[1].term), item[2]))
        routed_events = [
            (name, event.time, term_to_str(event.term)) for _time_, event, name in tagged
        ]
        routed_fluents.sort()
    end_time = stream.max_time or 0
    if repeat > 1:
        # Tile copies of the stream end to end; fluent intervals shift too.
        period = end_time + 1
        base_events = list(routed_events)
        base_fluents = list(routed_fluents)
        for copy_index in range(1, repeat):
            offset = copy_index * period
            routed_events.extend(
                (name, time + offset, term) for name, time, term in base_events
            )
            routed_fluents.extend(
                (name, fvp, [[start + offset, end + offset] for start, end in pairs])
                for name, fvp, pairs in base_fluents
            )
        end_time = period * repeat - 1
    if limit is not None:
        routed_events = routed_events[:limit]
        end_time = max((time for _name, time, _term in routed_events), default=0)
    return Workload(
        sessions=names,
        fluents=routed_fluents,
        events=routed_events,
        end_time=end_time,
    )


def build_soak_workload(
    sessions: int,
    events_per_session: int = 64,
    entities_per_session: int = 4,
    step: int = 60,
    seed: int = 0,
    session_prefix: str = "soak",
) -> Workload:
    """A synthetic fleet-scale workload over the cluster soak rules.

    Each session hosts ``entities_per_session`` independent entity state
    machines driven by ``start``/``spike``/``stop`` events (the vocabulary
    of :data:`repro.serve.cluster.engines.SOAK_RULES`) with pseudo-random
    but seed-deterministic timestamps on one shared timeline, so the
    events of all sessions interleave in global time order exactly like a
    real multi-tenant stream. The per-event recognition cost is tiny by
    construction — a soak run measures the serving fabric (routing,
    queues, checkpoints, migration) rather than rule evaluation.

    Memory is O(total events); a millions-of-sessions soak is reached by
    pumping this workload repeatedly with fresh ``session_prefix`` ranges
    (the session namespace is unbounded and workers attach on demand),
    not by materializing one giant list.
    """
    if sessions < 1:
        raise ValueError("sessions must be >= 1")
    if events_per_session < 1:
        raise ValueError("events_per_session must be >= 1")
    rng = random.Random(seed)
    names = ["%s%d" % (session_prefix, index) for index in range(sessions)]
    cycle = ("start", "spike", "stop")
    tagged: List[Tuple[int, str, str]] = []
    for name in names:
        time = 0
        for count in range(events_per_session):
            time += rng.randrange(1, step)
            entity = "e%d" % (count % entities_per_session)
            kind = cycle[(count // entities_per_session) % len(cycle)]
            tagged.append((time, name, "%s(%s)" % (kind, entity)))
    tagged.sort()
    events = [(name, time, term) for time, name, term in tagged]
    end_time = max(time for time, _name, _term in tagged)
    return Workload(sessions=names, fluents=[], events=events, end_time=end_time)


class ServiceClient:
    """A JSON-lines client: connect, send, await replies, retry on pushback."""

    def __init__(
        self, reader: "asyncio.StreamReader", writer: "asyncio.StreamWriter"
    ) -> None:
        self.reader = reader
        self.writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServiceClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def close(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    def post(self, message: Dict[str, Any]) -> None:
        """Fire-and-forget send (no response expected on success)."""
        self.writer.write(
            json.dumps(message, separators=(",", ":")).encode() + b"\n"
        )

    async def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one message that always produces a response, and await it."""
        self.post(message)
        await self.writer.drain()
        return await self.read_response()

    async def read_response(self) -> Dict[str, Any]:
        line = await self.reader.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        return json.loads(line)


@dataclass
class LoadReport:
    """What the load generator measured."""

    events_sent: int = 0
    events_accepted: int = 0
    rejections: int = 0
    retries: int = 0
    ingest_seconds: float = 0.0
    drain_seconds: float = 0.0
    queue_peak: int = 0
    results: Dict[str, RecognitionResult] = field(default_factory=dict)
    status: Dict[str, Any] = field(default_factory=dict)

    @property
    def ingest_rate(self) -> float:
        """Accepted events per wall-clock second during the pump phase."""
        if self.ingest_seconds <= 0:
            return 0.0
        return self.events_accepted / self.ingest_seconds

    def merged_result(self) -> RecognitionResult:
        """Union of all sessions' detections (global items dedupe by union)."""
        merged = RecognitionResult()
        for result in self.results.values():
            for pair, intervals in result.items():
                merged.merge(pair, intervals)
        return merged


async def run_ingest(
    client: ServiceClient,
    workload: Workload,
    mode: str = "batched",
    batch_size: int = 512,
    skip: int = 0,
    final_query: bool = True,
    query_at: Optional[int] = None,
) -> LoadReport:
    """Pump ``workload`` through ``client`` and collect detections.

    ``skip`` drops that many leading events — the resume path after a
    restore re-sends only the suffix a checkpoint reports as unapplied.
    Fluent deliveries are replayed in full on resume: sessions clip and
    union them idempotently, so re-delivery is safe and keeps the resume
    protocol stateless.
    """
    report = LoadReport()
    events = workload.events[skip:] if skip else workload.events
    for name, fvp, pairs in workload.fluents:
        response = await client.request(
            {"type": "fluent", "session": name, "fvp": fvp, "intervals": pairs, "ack": True}
        )
        if not response.get("ok"):
            raise RuntimeError("fluent delivery failed: %r" % response)
    started = _time.perf_counter()
    if mode == "batched":
        await _pump_batched(client, events, batch_size, report)
    elif mode == "firehose":
        await _pump_firehose(client, events, report)
    else:
        raise ValueError("unknown load mode %r" % mode)
    report.ingest_seconds = _time.perf_counter() - started
    started = _time.perf_counter()
    if final_query:
        at = workload.end_time if query_at is None else query_at
        for name in workload.sessions:
            response = await client.request({"type": "query", "session": name, "at": at})
            if not response.get("ok"):
                raise RuntimeError("final query failed: %r" % response)
            report.results[name] = RecognitionResult.from_dict(response["fvps"])
    report.drain_seconds = _time.perf_counter() - started
    status = await client.request({"type": "status"})
    report.status = status
    for session_status in status.get("sessions", {}).values():
        report.queue_peak = max(report.queue_peak, session_status.get("queue_peak", 0))
    return report


async def _pump_batched(
    client: ServiceClient,
    events: Sequence[Tuple[str, int, str]],
    batch_size: int,
    report: LoadReport,
) -> None:
    """Stop-and-wait batches per session boundary, preserving global order."""
    index, total = 0, len(events)
    while index < total:
        name = events[index][0]
        upper = index
        batch: List[List[Any]] = []
        while upper < total and events[upper][0] == name and len(batch) < batch_size:
            batch.append([events[upper][1], events[upper][2]])
            upper += 1
        message = {"type": "events", "session": name, "batch": batch, "ack": True}
        while True:
            report.events_sent += len(batch)
            response = await client.request(message)
            if response.get("ok"):
                report.events_accepted += len(batch)
                break
            if response.get("error") == "backpressure":
                report.rejections += len(batch)
                report.retries += 1
                await asyncio.sleep(float(response.get("retry_after", 0.05)))
                continue
            raise RuntimeError("ingest failed: %r" % response)
        index = upper


async def _pump_firehose(
    client: ServiceClient,
    events: Sequence[Tuple[str, int, str]],
    report: LoadReport,
) -> None:
    """One unacked ``event`` line per event; rejected seqs re-sent per pass."""
    pending: List[int] = list(range(len(events)))
    drain_every = 1024
    while pending:
        rejected: List[int] = []
        reader_task = asyncio.ensure_future(
            _collect_rejections(client, rejected)
        )
        for position, seq in enumerate(pending):
            name, time, term = events[seq]
            client.post(
                {"type": "event", "session": name, "time": time, "term": term, "seq": seq}
            )
            report.events_sent += 1
            if position % drain_every == drain_every - 1:
                await client.writer.drain()
        # A sentinel status round-trip marks the end of the pass: once its
        # response arrives, every rejection for this pass has been read.
        client.post({"type": "status"})
        await client.writer.drain()
        await reader_task
        report.rejections += len(rejected)
        report.events_accepted += len(pending) - len(rejected)
        if rejected:
            report.retries += 1
            await asyncio.sleep(0.05)
        pending = sorted(rejected)


async def _collect_rejections(client: ServiceClient, rejected: List[int]) -> None:
    """Read responses until the sentinel ``status`` reply, noting rejections."""
    while True:
        response = await client.read_response()
        if response.get("type") == "status":
            return
        if not response.get("ok") and response.get("seq") is not None:
            rejected.append(int(response["seq"]))
