"""Streaming recognition service: async ingest, routing, checkpoint/restore.

This package runs the windowed RTEC engine as a long-lived service. Where
RTEC's reference implementation drives recognition from a Prolog run-time
loop polling a stream file, :mod:`repro.serve` exposes a JSON-lines
protocol (TCP or stdin/stdout), hosts many named sessions behind one
:class:`~repro.serve.sessions.SessionManager`, applies backpressure at a
configurable high-water mark, and checkpoints bounded session state so a
crashed service restarts without re-reading history.

Layering, bottom up:

* :mod:`repro.serve.protocol` — wire format, term parsing, validation;
* :mod:`repro.serve.checkpoint` — durable snapshots, versioned files;
* :mod:`repro.serve.sessions` — per-session ingest queues, the worker
  loop, the deterministic window-advance schedule;
* :mod:`repro.serve.server` — asyncio transports and request dispatch;
* :mod:`repro.serve.loadgen` / :mod:`repro.serve.replay` — workload
  construction, load measurement, and kill-and-restore drills;
* :mod:`repro.serve.cluster` — the distributed tier: a router in front
  of N shared-nothing worker processes, with checkpoint-lease-fenced
  session migration, heartbeat-driven failover and kill-a-worker drills
  (imported on demand; nothing above this line depends on it).
"""

from repro.serve.checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointError,
    description_hash,
    latest_checkpoint,
    latest_lease,
    list_checkpoints,
    load_checkpoint,
    write_checkpoint,
)
from repro.serve.loadgen import (
    LoadReport,
    ServiceClient,
    Workload,
    build_soak_workload,
    build_workload,
    run_ingest,
)
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_line,
    encode,
    parse_event_term,
    read_protocol_lines,
)
from repro.serve.replay import (
    ReplayOutcome,
    applied_event_offsets,
    drive_reference_session,
    reference_merged,
    reference_result,
    resume_workload,
    run_replay,
)
from repro.serve.server import RecognitionServer
from repro.serve.sessions import ManagedSession, SessionConfig, SessionManager

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointError",
    "LoadReport",
    "MAX_LINE_BYTES",
    "ManagedSession",
    "ProtocolError",
    "RecognitionServer",
    "ReplayOutcome",
    "ServiceClient",
    "SessionConfig",
    "SessionManager",
    "Workload",
    "applied_event_offsets",
    "build_soak_workload",
    "build_workload",
    "decode_line",
    "description_hash",
    "drive_reference_session",
    "encode",
    "latest_checkpoint",
    "latest_lease",
    "list_checkpoints",
    "load_checkpoint",
    "parse_event_term",
    "read_protocol_lines",
    "reference_merged",
    "reference_result",
    "resume_workload",
    "run_ingest",
    "run_replay",
    "write_checkpoint",
]
