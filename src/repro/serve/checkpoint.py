"""Durable checkpoints of online recognition sessions.

A checkpoint is one JSON file holding a :class:`~repro.rtec.session.SessionSnapshot`
plus the bookkeeping a restart needs:

* ``version`` — the checkpoint format version (currently 2; version 2
  added the delta derivation cache and staleness flag of incremental
  window evaluation — version-1 files still load, restoring without a
  cache so the first advance after restart recomputes the full window
  and rebuilds it);
* ``session`` — the session name;
* ``windows`` — how many windows the session had advanced (also the file's
  monotonically increasing sequence number);
* ``applied`` — how many input items (events and fluent deliveries) the
  service had applied to the session, in arrival order. A replayer that
  recorded its stream resumes ingest at this offset: items in flight but
  not yet applied at the crash are re-sent, items already inside the
  snapshot's buffer are not;
* ``description_hash`` — SHA-256 of the event description's concrete
  syntax. Restoring onto a different description is refused: carried
  initiations and amalgamated intervals are only meaningful against the
  rules that produced them;
* ``owner`` / ``lease`` — optional cluster bookkeeping. ``owner`` names
  the worker that wrote the file; ``lease`` is a monotonically increasing
  fencing token bumped on every ownership transfer (migration or
  crash-restore). A writer presenting a lease below the latest on-disk
  lease is a zombie — its session was moved elsewhere while it was still
  running — and the write is refused instead of clobbering the new
  owner's state. Single-process serving omits both fields (``lease`` is
  then 0) and keeps the unfenced fast path.

Files are named ``<session>-<windows:08d>.json`` and written atomically
(temp file + rename), so the latest complete checkpoint is always loadable
even if the process dies mid-write. Old checkpoints are kept (they are
small — session state is bounded by omega, not by the stream) unless a
``keep`` budget is given.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.intervals import IntervalList
from repro.logic.parser import parse_term
from repro.logic.pretty import term_to_str
from repro.logic.terms import Term
from repro.rtec.description import EventDescription
from repro.rtec.result import RecognitionResult
from repro.rtec.session import SessionSnapshot
from repro.rtec.stream import Event

__all__ = [
    "CHECKPOINT_VERSION",
    "COMPATIBLE_VERSIONS",
    "Checkpoint",
    "CheckpointError",
    "description_hash",
    "latest_checkpoint",
    "latest_lease",
    "list_checkpoints",
    "load_checkpoint",
    "snapshot_from_dict",
    "snapshot_to_dict",
    "write_checkpoint",
]

CHECKPOINT_VERSION = 2

#: Older format versions :func:`load_checkpoint` still accepts. Version 1
#: lacks the ``cache``/``stale`` snapshot fields; restoring yields a
#: cache-less session whose next advance falls back to full recomputation.
COMPATIBLE_VERSIONS = frozenset({1, CHECKPOINT_VERSION})


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, read, or applied."""


def description_hash(description: EventDescription) -> str:
    """SHA-256 of the description's concrete syntax (restore compatibility key)."""
    return hashlib.sha256(description.to_text().encode()).hexdigest()


@dataclass
class Checkpoint:
    """One loaded checkpoint file."""

    session: str
    windows: int
    applied: int
    description_hash: str
    snapshot: SessionSnapshot
    path: Optional[str] = None
    owner: Optional[str] = None
    lease: int = 0


# -- snapshot (de)serialization ------------------------------------------------


def snapshot_to_dict(snapshot: SessionSnapshot) -> Dict[str, object]:
    """A JSON-ready mapping; terms render to concrete syntax, intervals to pairs."""
    return {
        "window": snapshot.window,
        "buffer": [[event.time, term_to_str(event.term)] for event in snapshot.buffer],
        "fluents": {
            term_to_str(pair): [[iv.start, iv.end] for iv in intervals]
            for pair, intervals in sorted(
                snapshot.fluent_intervals.items(), key=lambda kv: term_to_str(kv[0])
            )
        },
        "pending": {
            term_to_str(pair): started
            for pair, started in sorted(
                snapshot.pending.items(), key=lambda kv: term_to_str(kv[0])
            )
        },
        "barriers": {
            term_to_str(pair): barrier
            for pair, barrier in sorted(
                snapshot.barriers.items(), key=lambda kv: term_to_str(kv[0])
            )
        },
        "result": snapshot.result.to_dict(),
        "last_query": snapshot.last_query,
        "first_advance": snapshot.first_advance,
        "cache": (
            None
            if snapshot.derived_cache is None
            else {
                term_to_str(pair): [[iv.start, iv.end] for iv in intervals]
                for pair, intervals in sorted(
                    snapshot.derived_cache.items(), key=lambda kv: term_to_str(kv[0])
                )
            }
        ),
        "stale": snapshot.stale,
    }


def snapshot_from_dict(data: Dict[str, object]) -> SessionSnapshot:
    buffer = [
        Event(int(time), parse_term(text)) for time, text in data.get("buffer", [])  # type: ignore[union-attr]
    ]
    fluent_intervals: Dict[Term, IntervalList] = {}
    for text, pairs in dict(data.get("fluents", {})).items():  # type: ignore[arg-type]
        fluent_intervals[parse_term(text)] = IntervalList(
            (int(start), int(end)) for start, end in pairs
        )
    pending = {
        parse_term(text): int(started)
        for text, started in dict(data.get("pending", {})).items()  # type: ignore[arg-type]
    }
    # "barriers" is absent in checkpoints written before deadline barriers
    # existed; such sessions simply restore without them.
    barriers = {
        parse_term(text): int(barrier)
        for text, barrier in dict(data.get("barriers", {})).items()  # type: ignore[arg-type]
    }
    last_query = data.get("last_query")
    # "cache" is absent in version-1 checkpoints (pre-incremental): the
    # restored session has no derivation cache and its first advance falls
    # back to a full-window recomputation, which rebuilds one.
    raw_cache = data.get("cache")
    derived_cache: Optional[Dict[Term, IntervalList]] = None
    if raw_cache is not None:
        derived_cache = {
            parse_term(text): IntervalList(
                (int(start), int(end)) for start, end in pairs
            )
            for text, pairs in dict(raw_cache).items()  # type: ignore[arg-type]
        }
    return SessionSnapshot(
        window=int(data["window"]),  # type: ignore[arg-type]
        buffer=buffer,
        fluent_intervals=fluent_intervals,
        pending=pending,
        barriers=barriers,
        result=RecognitionResult.from_dict(data.get("result", {})),  # type: ignore[arg-type]
        last_query=None if last_query is None else int(last_query),  # type: ignore[arg-type]
        first_advance=bool(data.get("first_advance", False)),
        derived_cache=derived_cache,
        stale=bool(data.get("stale", False)),
    )


# -- files ---------------------------------------------------------------------


def _checkpoint_name(session: str, windows: int) -> str:
    return "%s-%08d.json" % (session, windows)


def write_checkpoint(
    directory: str,
    session: str,
    snapshot: SessionSnapshot,
    *,
    applied: int,
    windows: int,
    description_digest: str,
    keep: Optional[int] = None,
    owner: Optional[str] = None,
    lease: Optional[int] = None,
) -> str:
    """Write one checkpoint atomically; returns the file path.

    ``keep``, when given, prunes all but the newest ``keep`` checkpoints of
    the session after a successful write.

    ``lease``, when given, enables write fencing: if the newest on-disk
    checkpoint of the session carries a strictly greater lease, the session
    has been handed to a new owner and this (stale) writer is refused with
    :class:`CheckpointError`. ``owner`` labels the file with the writing
    worker for diagnostics; neither field changes the snapshot payload.
    """
    os.makedirs(directory, exist_ok=True)
    if lease is not None:
        current = latest_lease(directory, session)
        if current > lease:
            raise CheckpointError(
                "fenced: checkpoint %s lease %d is stale (disk lease is %d)"
                % (session, lease, current)
            )
    payload = {
        "version": CHECKPOINT_VERSION,
        "session": session,
        "windows": windows,
        "applied": applied,
        "description_hash": description_digest,
        "snapshot": snapshot_to_dict(snapshot),
    }
    if owner is not None:
        payload["owner"] = owner
    if lease is not None:
        payload["lease"] = lease
    path = os.path.join(directory, _checkpoint_name(session, windows))
    handle, temp_path = tempfile.mkstemp(
        prefix=".%s-" % session, suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(handle, "w") as stream:
            json.dump(payload, stream, sort_keys=True, separators=(",", ":"))
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(temp_path, path)
    except OSError as exc:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise CheckpointError("cannot write checkpoint %s: %s" % (path, exc))
    if keep is not None and keep > 0:
        for _windows, stale in list_checkpoints(directory, session)[:-keep]:
            try:
                os.unlink(stale)
            except OSError:
                pass
    return path


def list_checkpoints(directory: str, session: str) -> List[Tuple[int, str]]:
    """All complete checkpoints of ``session``, oldest first."""
    prefix = session + "-"
    found: List[Tuple[int, str]] = []
    try:
        entries = os.listdir(directory)
    except OSError:
        return []
    for entry in entries:
        if not entry.startswith(prefix) or not entry.endswith(".json"):
            continue
        sequence = entry[len(prefix) : -len(".json")]
        if sequence.isdigit():
            found.append((int(sequence), os.path.join(directory, entry)))
    return sorted(found)


def latest_checkpoint(directory: str, session: str) -> Optional[str]:
    """Path of the newest complete checkpoint of ``session``, if any."""
    found = list_checkpoints(directory, session)
    return found[-1][1] if found else None


def latest_lease(directory: str, session: str) -> int:
    """The fencing lease of the newest checkpoint of ``session`` (0 if none).

    Unreadable files count as lease 0 rather than an error: fencing guards
    against a *newer* owner, and a torn or missing file cannot prove one.
    """
    path = latest_checkpoint(directory, session)
    if path is None:
        return 0
    try:
        with open(path) as stream:
            payload = json.load(stream)
    except (OSError, ValueError):
        return 0
    try:
        return int(payload.get("lease", 0))
    except (TypeError, ValueError):
        return 0


def load_checkpoint(path: str) -> Checkpoint:
    try:
        with open(path) as stream:
            payload = json.load(stream)
    except (OSError, ValueError) as exc:
        raise CheckpointError("cannot read checkpoint %s: %s" % (path, exc))
    version = payload.get("version")
    if version not in COMPATIBLE_VERSIONS:
        raise CheckpointError(
            "checkpoint %s has format version %r; this build reads versions %s"
            % (path, version, sorted(COMPATIBLE_VERSIONS))
        )
    try:
        return Checkpoint(
            session=payload["session"],
            windows=int(payload["windows"]),
            applied=int(payload["applied"]),
            description_hash=payload["description_hash"],
            snapshot=snapshot_from_dict(payload["snapshot"]),
            path=path,
            owner=payload.get("owner"),
            lease=int(payload.get("lease", 0)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError("malformed checkpoint %s: %s" % (path, exc))
