"""Multi-session hosting: routing, cadence, backpressure, checkpoints.

The :class:`SessionManager` hosts one :class:`~repro.rtec.session.RTECSession`
per named tenant (one event description each) and decouples *ingest* from
*reasoning*, mirroring RTEC's run-time design: accepting an event only
appends it to a bounded queue, while recognition runs at query times on a
configurable cadence, its cost governed by the window omega rather than by
the arrival rate.

Each managed session owns an ingest queue and a single worker task — the
only mutator of its ``RTECSession``, so no locks are needed. The worker
applies queued items in arrival order and, in auto-advance mode, fires a
window advance whenever an event's timestamp crosses the next query-time
boundary (boundaries lie on the step grid, so the advance schedule is a
pure function of the item sequence — the property the checkpoint/restore
equivalence guarantee rests on). Window evaluation runs in a thread pool
executor so other sessions keep ingesting while one session reasons.

Backpressure: once a session's queue reaches its high-water mark, further
events are rejected with a ``retry_after`` hint instead of being buffered
— a slow evaluator translates into client-visible pushback, never into
unbounded queue growth.

Malformed event terms discovered on the worker (parsing is deferred off
the accept path) are dropped and counted (``invalid`` in ``status``)
rather than failing the session; only internal evaluation errors mark a
session as failed, and a failed session rejects further traffic without
affecting its neighbours.

Checkpoints: every ``checkpoint_every`` windows (and on demand, and on
graceful shutdown) the worker snapshots the session — a cheap copy bounded
by omega — records how many input items had been applied, and persists
both via :mod:`repro.serve.checkpoint`.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro import telemetry
from repro.intervals import IntervalList
from repro.rtec.engine import RTECEngine
from repro.rtec.result import RecognitionResult
from repro.rtec.session import RTECSession
from repro.rtec.stream import Event
from repro.serve import checkpoint as checkpointing
from repro.serve.protocol import ProtocolError, parse_event_term

__all__ = ["SessionConfig", "ManagedSession", "SessionManager"]


@dataclass
class SessionConfig:
    """Per-session serving parameters."""

    #: RTEC's omega: the sliding-window extent, in stream time units.
    window: int
    #: Query-time cadence; advances fire on multiples of ``step`` as event
    #: time crosses them. Defaults to the window (tumbling windows).
    step: Optional[int] = None
    #: Worker threads for entity-sharded window evaluation (``RTECSession(jobs=)``).
    jobs: Optional[int] = None
    #: Ingest-queue high-water mark: events beyond this are rejected.
    high_water: int = 8192
    #: Retry hint (seconds) returned with backpressure rejections.
    retry_after: float = 0.05
    #: Advance automatically as event time crosses step boundaries; when
    #: off, the session only advances on explicit ``query`` messages.
    auto_advance: bool = True
    #: Write a checkpoint every this many windows (0: only on demand).
    checkpoint_every: int = 0
    #: Keep at most this many checkpoint files per session (None: all).
    checkpoint_keep: Optional[int] = None
    #: Incremental (delta) window evaluation (``RTECSession(incremental=)``).
    #: Off forces full-window recomputation on every advance (the oracle).
    incremental: bool = True
    #: Kernel backend the session's advances run under
    #: (``RTECSession(backend=)``): ``"pure"``, ``"columnar"``, or ``None``
    #: for the ambient process-wide backend.
    backend: Optional[str] = None
    #: Certificate-gated admission (``repro.analysis.certify``): ``"off"``
    #: skips certification, ``"warn"`` (default) records admission warnings
    #: for uncertifiable/leaky descriptions in the session status, and
    #: ``"require"`` rejects them at session creation.
    certify: str = "warn"

    def resolved_step(self) -> int:
        step = self.window if self.step is None else self.step
        if step <= 0:
            raise ValueError("step must be positive")
        return step


_STOP = object()

#: Worker batch cap: how many queued items are drained per wakeup.
_DRAIN_LIMIT = 2048

_EVENT = 0
_FLUENT = 1
_QUERY = 2
_CHECKPOINT = 3


@dataclass
class _Counters:
    ingested: int = 0
    rejected: int = 0
    dropped: int = 0
    invalid: int = 0
    applied: int = 0
    windows: int = 0
    checkpoints: int = 0
    queue_peak: int = 0


class ManagedSession:
    """One hosted tenant: an engine, its online session, queue and worker."""

    def __init__(
        self,
        name: str,
        engine: RTECEngine,
        config: SessionConfig,
        checkpoint_dir: Optional[str] = None,
        owner: Optional[str] = None,
        lease: Optional[int] = None,
    ) -> None:
        self.name = name
        self.engine = engine
        self.config = config
        self.checkpoint_dir = checkpoint_dir
        #: Cluster bookkeeping: the worker hosting this session and its
        #: fencing lease (see :func:`repro.serve.checkpoint.write_checkpoint`).
        #: Both stay ``None`` outside a cluster, keeping writes unfenced.
        self.owner = owner
        self.lease = lease
        self.step = config.resolved_step()
        self.session = RTECSession(
            engine,
            config.window,
            jobs=config.jobs,
            incremental=config.incremental,
            backend=config.backend,
        )
        self.description_digest = checkpointing.description_hash(engine.description)
        #: The description's analysis certificate (None when admission is off).
        self.certificate = None
        #: Why admission flagged this description (empty = clean or off).
        self.admission_warnings: List[str] = []
        if config.certify not in ("off", "warn", "require"):
            raise ValueError(
                "certify must be 'off', 'warn' or 'require', not %r" % config.certify
            )
        if config.certify != "off":
            certificate = engine.certificate()
            self.certificate = certificate
            if not certificate.certified:
                self.admission_warnings.append(
                    "description is uncertifiable (base analysis errors)"
                )
            if not certificate.memory_bounded:
                self.admission_warnings.append(
                    "description has leaky fluents: %s"
                    % ", ".join(certificate.leaky_fluents)
                )
            if self.admission_warnings and config.certify == "require":
                raise ValueError(
                    "session %r rejected by certificate-gated admission: %s"
                    % (name, "; ".join(self.admission_warnings))
                )
        self.counters = _Counters()
        self.next_query: Optional[int] = None
        self.failure: Optional[str] = None
        self.queue: "asyncio.Queue[Any]" = asyncio.Queue()
        self._task: Optional["asyncio.Task[None]"] = None

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._worker())

    async def stop(self) -> None:
        if self._task is not None:
            await self.queue.put(_STOP)
            await self._task
            self._task = None

    async def kill(self) -> None:
        """Abort the worker without the graceful shutdown checkpoint.

        Simulates a crash for the kill-and-restore tests: whatever the
        latest on-disk checkpoint says is all a restart gets.
        """
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    def adopt(self, loaded: checkpointing.Checkpoint) -> None:
        """Continue from a checkpoint (must be called before :meth:`start`)."""
        if loaded.description_hash != self.description_digest:
            raise checkpointing.CheckpointError(
                "checkpoint %s was produced by a different event description"
                % (loaded.path or loaded.session)
            )
        self.session.restore(loaded.snapshot)
        self.counters.applied = loaded.applied
        self.counters.windows = loaded.windows
        last_query = loaded.snapshot.last_query
        if last_query is not None:
            self.next_query = self._grid_after(last_query)

    # -- ingest (called from connection handlers) ------------------------------

    def offer_events(self, batch: List[Tuple[int, str]]) -> Optional[Dict[str, Any]]:
        """Enqueue events, or return a rejection response.

        The batch is accepted or rejected atomically; acceptance is only a
        queue append — parsing and recognition happen on the worker.
        """
        if self.failure is not None:
            return {"error": "failed", "message": self.failure}
        depth = self.queue.qsize()
        if depth + len(batch) > self.config.high_water:
            self.counters.rejected += len(batch)
            return {
                "error": "backpressure",
                "message": "session '%s' ingest queue is full" % self.name,
                "retry_after": self.config.retry_after,
                "queue_depth": depth,
            }
        for time, term_text in batch:
            self.queue.put_nowait((_EVENT, time, term_text))
        depth += len(batch)
        if depth > self.counters.queue_peak:
            self.counters.queue_peak = depth
        return None

    def offer_fluent(
        self, fvp_text: str, intervals: List[Tuple[int, int]]
    ) -> Optional[Dict[str, Any]]:
        if self.failure is not None:
            return {"error": "failed", "message": self.failure}
        depth = self.queue.qsize()
        if depth >= self.config.high_water:
            self.counters.rejected += 1
            return {
                "error": "backpressure",
                "message": "session '%s' ingest queue is full" % self.name,
                "retry_after": self.config.retry_after,
                "queue_depth": depth,
            }
        self.queue.put_nowait((_FLUENT, fvp_text, intervals))
        return None

    async def query(
        self, at: Optional[int] = None, fvp: Optional[str] = None
    ) -> Dict[str, Any]:
        """Detections amalgamated so far (optionally advancing to ``at``).

        Runs on the worker, after everything already queued — a query
        observes every event accepted before it.
        """
        future: "asyncio.Future[Dict[str, Any]]" = asyncio.get_running_loop().create_future()
        await self.queue.put((_QUERY, at, fvp, future))
        return await future

    async def checkpoint(self) -> Dict[str, Any]:
        """Snapshot now (after everything already queued); returns metadata."""
        if self.checkpoint_dir is None:
            raise ProtocolError("no-checkpoint-dir", "service started without --checkpoint-dir")
        future: "asyncio.Future[Dict[str, Any]]" = asyncio.get_running_loop().create_future()
        await self.queue.put((_CHECKPOINT, future))
        return await future

    # -- worker ----------------------------------------------------------------

    async def _worker(self) -> None:
        queue = self.queue
        while True:
            item = await queue.get()
            if item is _STOP:
                break
            try:
                stop = await self._apply(item)
                for _ in range(_DRAIN_LIMIT):
                    if stop or queue.empty():
                        break
                    item = queue.get_nowait()
                    if item is _STOP:
                        stop = True
                        break
                    stop = await self._apply(item)
                if stop:
                    break
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - a failed session must not kill the service
                self.failure = "%s: %s" % (exc.__class__.__name__, exc)
                self._reject_pending()
        if self.checkpoint_dir is not None and self.failure is None:
            # Graceful shutdown: persist the final state so a restart
            # resumes exactly here.
            await self._write_checkpoint()

    def _reject_pending(self) -> None:
        while not self.queue.empty():
            item = self.queue.get_nowait()
            if item is _STOP or not isinstance(item, tuple):
                continue
            if item[0] in (_QUERY, _CHECKPOINT) and not item[-1].done():
                item[-1].set_exception(RuntimeError(self.failure or "session failed"))

    async def _apply(self, item: Tuple[Any, ...]) -> bool:
        """Apply one queued item in arrival order; True stops the worker."""
        kind = item[0]
        if kind == _EVENT:
            _kind, time, term_text = item
            try:
                term = parse_event_term(term_text)
            except ProtocolError:
                # A malformed term must not poison a long-lived tenant:
                # drop it, but still count it as applied so checkpointed
                # resume offsets keep matching the recorded stream.
                self.counters.applied += 1
                self.counters.invalid += 1
                return False
            if self.config.auto_advance:
                if self.next_query is None:
                    self.next_query = self._grid_after(time)
                while time > self.next_query:
                    await self._advance(self.next_query)
                    self.next_query += self.step
            event = Event(time, term)
            accepted = self.session.submit((event,))
            self.counters.ingested += 1
            self.counters.applied += 1
            if not accepted:
                self.counters.dropped += 1
        elif kind == _FLUENT:
            _kind, fvp_text, intervals = item
            pair = parse_event_term(fvp_text)
            interval_list = IntervalList(intervals)
            self.session.submit_fluent(pair, interval_list)
            self.counters.applied += 1
            # Fluent-only spans must be evaluated too: seed the advance
            # grid from the earliest delivered point when no event has.
            if self.config.auto_advance and self.next_query is None and interval_list:
                self.next_query = self._grid_after(interval_list.span[0])
        elif kind == _QUERY:
            _kind, at, fvp, future = item
            payload = await self._run_query(at, fvp)
            if not future.done():
                future.set_result(payload)
        elif kind == _CHECKPOINT:
            future = item[1]
            payload = await self._write_checkpoint()
            if not future.done():
                future.set_result(payload)
        return False

    async def _run_query(self, at: Optional[int], fvp: Optional[str]) -> Dict[str, Any]:
        last = self.session.last_query_time
        if at is not None and (last is None or at > last):
            # Walk the step grid instead of jumping straight to ``at``: with
            # tumbling windows a direct jump would leave the span between
            # the last window and ``(at - window, at]`` unevaluated, losing
            # intervals of still-open durative states — and it would give
            # sessions that saw fewer events a different advance schedule
            # than the uninterrupted run the equivalence tests compare with.
            # Before any input has seeded the grid there is nothing a
            # window could derive, so a single advance suffices.
            if self.config.auto_advance and self.next_query is not None:
                while self.next_query < at:
                    await self._advance(self.next_query)
                    self.next_query += self.step
            await self._advance(at)
            if self.next_query is None or self.next_query <= at:
                self.next_query = self._grid_after(at)
        result = self.session.result
        payload: Dict[str, Any] = {"last_query": self.session.last_query_time}
        if fvp is not None:
            payload["intervals"] = [
                [iv.start, iv.end] for iv in result.holds_for(fvp)
            ]
            payload["fvp"] = fvp
        else:
            payload["fvps"] = result.to_dict()
        return payload

    async def _advance(self, query_time: int) -> None:
        with telemetry.span("serve.advance", session=self.name, query_time=query_time):
            loop = asyncio.get_running_loop()
            # The evaluator runs off-loop so other sessions keep ingesting;
            # this worker awaits it, so the session has a single mutator.
            await loop.run_in_executor(None, self.session.advance, query_time)
        self.counters.windows += 1
        every = self.config.checkpoint_every
        if self.checkpoint_dir is not None and every > 0 and self.counters.windows % every == 0:
            await self._write_checkpoint()

    async def _write_checkpoint(self) -> Dict[str, Any]:
        assert self.checkpoint_dir is not None
        with telemetry.span("serve.checkpoint", session=self.name):
            # Snapshot synchronously (the worker owns the state), persist
            # off-loop (file IO must not stall ingest).
            snapshot = self.session.snapshot()
            applied = self.counters.applied
            windows = self.counters.windows
            loop = asyncio.get_running_loop()
            path = await loop.run_in_executor(
                None,
                lambda: checkpointing.write_checkpoint(
                    self.checkpoint_dir,  # type: ignore[arg-type]
                    self.name,
                    snapshot,
                    applied=applied,
                    windows=windows,
                    description_digest=self.description_digest,
                    keep=self.config.checkpoint_keep,
                    owner=self.owner,
                    lease=self.lease,
                ),
            )
        self.counters.checkpoints += 1
        return {"path": path, "windows": windows, "applied": applied}

    def _grid_after(self, time: int) -> int:
        """The first step-grid boundary strictly after ``time``."""
        return (time // self.step + 1) * self.step

    # -- introspection ---------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        counters = self.counters
        status: Dict[str, Any] = {
            "window": self.config.window,
            "step": self.step,
            "jobs": self.config.jobs,
            "ingested": counters.ingested,
            "applied": counters.applied,
            "rejected": counters.rejected,
            "dropped": counters.dropped,
            "invalid": counters.invalid,
            "windows": counters.windows,
            "checkpoints": counters.checkpoints,
            "queue_depth": self.queue.qsize(),
            "queue_peak": counters.queue_peak,
            "high_water": self.config.high_water,
            "buffered_events": self.session.buffered_events,
            "stored_fluent_intervals": self.session.stored_fluent_intervals,
            "last_query": self.session.last_query_time,
            "next_query": self.next_query,
            "fvps": len(self.session.result),
            "description_hash": self.description_digest,
            "failure": self.failure,
            "owner": self.owner,
            "lease": self.lease,
        }
        if self.certificate is not None:
            status["certified"] = self.certificate.certified
            status["delta_safe"] = self.certificate.delta_safe
            status["memory_bounded"] = self.certificate.memory_bounded
            status["cost_weight"] = self.certificate.placement_weight
        if self.admission_warnings:
            status["admission_warnings"] = list(self.admission_warnings)
        return status

    @property
    def result(self) -> RecognitionResult:
        return self.session.result


class SessionManager:
    """Routes protocol traffic to named sessions and owns their lifecycle."""

    def __init__(
        self, checkpoint_dir: Optional[str] = None, owner: Optional[str] = None
    ) -> None:
        self.checkpoint_dir = checkpoint_dir
        #: Worker identity stamped on every hosted session's checkpoints
        #: (``None`` outside a cluster).
        self.owner = owner
        self.sessions: Dict[str, ManagedSession] = {}

    def add_session(
        self,
        name: str,
        engine: RTECEngine,
        config: SessionConfig,
        restore: bool = False,
        lease: Optional[int] = None,
    ) -> ManagedSession:
        """Host ``engine`` under ``name``; optionally resume its latest checkpoint.

        ``lease``, when given, fences the session's checkpoint writes (a
        cluster bumps it on every ownership transfer). With ``restore`` and
        no explicit lease, the session continues under the lease found in
        the adopted checkpoint.
        """
        if name in self.sessions:
            raise ValueError("session %r already exists" % name)
        managed = ManagedSession(
            name, engine, config, self.checkpoint_dir, owner=self.owner, lease=lease
        )
        if restore and self.checkpoint_dir is not None:
            latest = checkpointing.latest_checkpoint(self.checkpoint_dir, name)
            if latest is not None:
                loaded = checkpointing.load_checkpoint(latest)
                managed.adopt(loaded)
                if lease is None and loaded.lease:
                    managed.lease = loaded.lease
        self.sessions[name] = managed
        return managed

    async def remove_session(self, name: str) -> ManagedSession:
        """Detach ``name``: stop its worker (which writes the graceful final
        checkpoint when a checkpoint directory is configured) and drop it."""
        managed = self.get(name)
        await managed.stop()
        del self.sessions[name]
        return managed

    def get(self, name: str) -> ManagedSession:
        managed = self.sessions.get(name)
        if managed is None:
            raise ProtocolError("no-such-session", "unknown session %r" % name)
        return managed

    def start(self) -> None:
        for managed in self.sessions.values():
            managed.start()

    async def stop(self) -> None:
        await asyncio.gather(*(managed.stop() for managed in self.sessions.values()))

    async def kill(self) -> None:
        await asyncio.gather(*(managed.kill() for managed in self.sessions.values()))

    def status(self) -> Dict[str, Any]:
        return {
            "sessions": {name: managed.status() for name, managed in self.sessions.items()},
            "checkpoint_dir": self.checkpoint_dir,
        }
