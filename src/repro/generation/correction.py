"""Minimal syntactic correction of generated event descriptions.

Section 5.2 of the paper: the best event descriptions "cannot be used
directly by RTEC, as they include minor syntactic errors, such as incorrect
names for constants and predicates"; the authors perform "the minimum
required changes", turning e.g. GPT-4o△ into GPT-4o▲. This module
automates the mechanical part of that step and accepts an explicit
reviewer-supplied rename map for the judgement calls (such as o1's
``trawlingArea`` -> ``fishing``, which no string metric can find).

What it fixes (error category 1 only):

* event, fluent, and background-predicate names that normalise to a known
  vocabulary name (case/underscore variants, e.g. ``gapEnd`` ->
  ``gap_end``) or are within a small edit distance of exactly one;
* unknown constants close to a known constant of the knowledge base;
* anything listed in the reviewer's rename maps.

What it deliberately does NOT fix: wrong fluent types, wrong interval
operators (``intersect_all`` vs ``union_all``), dropped conditions,
undefined activities with no close known name — the semantic errors that
Figure 2c then measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro import telemetry
from repro.llm.pipeline import GeneratedActivity, GeneratedEventDescription
from repro.logic.knowledge import KnowledgeBase
from repro.logic.parser import Literal, Rule
from repro.logic.terms import Compound, Constant, Term, Variable
from repro.rtec.builtins import EVALUABLE_FUNCTORS
from repro.rtec.description import (
    INTERVAL_CONSTRUCTS,
    EventDescription,
    Vocabulary,
    fluent_key,
)

__all__ = ["CorrectionReport", "correct_event_description", "levenshtein"]

from repro.logic.parser import COMPARISON_OPERATORS

_STRUCTURAL = (
    {"happensAt", "holdsAt", "holdsFor", "initiatedAt", "terminatedAt", "not", "list", "="}
    | set(INTERVAL_CONSTRUCTS)
    | set(EVALUABLE_FUNCTORS)
    | set(COMPARISON_OPERATORS)
)

#: Fluent values that are part of the RTEC/maritime conventions rather than
#: the knowledge base.
_KNOWN_VALUES = {"true", "false", "nearPorts", "farFromPorts", "below", "normal", "above", "[]"}


@dataclass
class CorrectionReport:
    """What the correction step changed, and what it could not fix."""

    functor_renames: Dict[str, str] = field(default_factory=dict)
    constant_renames: Dict[str, str] = field(default_factory=dict)
    unresolved: List[str] = field(default_factory=list)

    @property
    def total_changes(self) -> int:
        return len(self.functor_renames) + len(self.constant_renames)


def levenshtein(left: str, right: str) -> int:
    """Edit distance (insert/delete/substitute), iterative two-row version."""
    if left == right:
        return 0
    if not left:
        return len(right)
    if not right:
        return len(left)
    previous = list(range(len(right) + 1))
    for i, l_ch in enumerate(left, start=1):
        current = [i]
        for j, r_ch in enumerate(right, start=1):
            cost = 0 if l_ch == r_ch else 1
            current.append(min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost))
        previous = current
    return previous[-1]


def _normalise(name: str) -> str:
    return name.replace("_", "").lower()


def _closest(name: str, candidates: Sequence[str], max_relative: float = 0.5) -> Optional[str]:
    """The unique best candidate: exact normalised match, else smallest edit
    distance within ``max_relative`` of the name length (ties unresolved)."""
    normalised = _normalise(name)
    exact = [c for c in candidates if _normalise(c) == normalised]
    if len(exact) == 1:
        return exact[0]
    if len(exact) > 1:
        return None
    scored = sorted(
        ((levenshtein(normalised, _normalise(c)), c) for c in candidates),
        key=lambda pair: (pair[0], pair[1]),
    )
    if not scored:
        return None
    best_distance, best = scored[0]
    limit = max(1, int(max_relative * max(len(normalised), 1)))
    if best_distance > limit:
        return None
    if len(scored) > 1 and scored[1][0] == best_distance:
        return None  # ambiguous
    return best


def _rewrite(term: Term, functor_map: Mapping[str, str], constant_map: Mapping[str, str]) -> Term:
    if isinstance(term, Compound):
        functor = functor_map.get(term.functor, term.functor)
        return Compound(
            functor,
            tuple(_rewrite(arg, functor_map, constant_map) for arg in term.args),
        )
    if isinstance(term, Constant) and isinstance(term.value, str):
        renamed = constant_map.get(term.value)
        if renamed is not None:
            return Constant(renamed)
    return term


def _referenced_names(rules: Sequence[Rule]) -> Tuple[Set[str], Set[str]]:
    """(functor names referenced in bodies/heads, string constants used)."""
    functors: Set[str] = set()
    constants: Set[str] = set()

    def walk(term: Term) -> None:
        if isinstance(term, Compound):
            functors.add(term.functor)
            for arg in term.args:
                walk(arg)
        elif isinstance(term, Constant) and isinstance(term.value, str):
            constants.add(term.value)

    for rule in rules:
        walk(rule.head)
        for literal in rule.body:
            walk(literal.term)
    return functors, constants


def correct_event_description(
    generated: GeneratedEventDescription,
    vocabulary: Vocabulary,
    kb: KnowledgeBase,
    manual_functor_renames: Optional[Mapping[str, str]] = None,
    manual_constant_renames: Optional[Mapping[str, str]] = None,
) -> Tuple[GeneratedEventDescription, CorrectionReport]:
    """Return a corrected copy of ``generated`` plus a report of the changes."""
    span = telemetry.span(
        "llm.correction", model=generated.model, scheme=generated.scheme
    )
    with span:
        return _correct(
            generated,
            vocabulary,
            kb,
            manual_functor_renames,
            manual_constant_renames,
            span,
        )


def _correct(
    generated: GeneratedEventDescription,
    vocabulary: Vocabulary,
    kb: KnowledgeBase,
    manual_functor_renames: Optional[Mapping[str, str]],
    manual_constant_renames: Optional[Mapping[str, str]],
    span,
) -> Tuple[GeneratedEventDescription, CorrectionReport]:
    report = CorrectionReport()
    rules = generated.all_rules()
    referenced_functors, referenced_constants = _referenced_names(rules)

    defined_fluents = {key[0] for key in EventDescription(rules).defined_keys}
    known_functors = (
        {name for name, _arity in vocabulary.input_events}
        | {name for name, _arity in vocabulary.input_fluents}
        | {name for name, _arity in vocabulary.background}
        | defined_fluents
        | _STRUCTURAL
    )
    known_constants = set(_KNOWN_VALUES)
    for fact in kb.facts():
        _functors, fact_constants = _referenced_names([Rule(fact)])
        known_constants |= fact_constants
        if isinstance(fact, Compound):
            known_constants.discard(fact.functor)

    functor_map: Dict[str, str] = dict(manual_functor_renames or {})
    constant_map: Dict[str, str] = dict(manual_constant_renames or {})
    report.functor_renames.update(functor_map)
    report.constant_renames.update(constant_map)

    vocabulary_names = sorted(known_functors - _STRUCTURAL)
    for name in sorted(referenced_functors - known_functors - set(functor_map)):
        span.count("attempts")
        match = _closest(name, vocabulary_names)
        if match is not None:
            functor_map[name] = match
            report.functor_renames[name] = match
        else:
            report.unresolved.append("functor %r" % name)

    for name in sorted(referenced_constants - known_constants - set(constant_map)):
        span.count("attempts")
        match = _closest(name, sorted(known_constants - _KNOWN_VALUES))
        if match is not None:
            constant_map[name] = match
            report.constant_renames[name] = match
        else:
            report.unresolved.append("constant %r" % name)

    corrected_activities: List[GeneratedActivity] = []
    for activity in generated.activities:
        corrected_rules = [
            Rule(
                _rewrite(rule.head, functor_map, constant_map),
                tuple(
                    Literal(_rewrite(lit.term, functor_map, constant_map), lit.negated)
                    for lit in rule.body
                ),
            )
            for rule in activity.rules
        ]
        corrected_activities.append(
            GeneratedActivity(
                group=activity.group,
                raw_text=activity.raw_text,
                rules=corrected_rules,
                parse_error=activity.parse_error,
            )
        )
    corrected = GeneratedEventDescription(
        model=generated.model,
        scheme=generated.scheme,
        activities=corrected_activities,
    )
    if span.enabled:
        span.count("functor_renames", len(report.functor_renames))
        span.count("constant_renames", len(report.constant_renames))
        span.count("unresolved", len(report.unresolved))
    return corrected, report
