"""Minimal syntactic correction of generated event descriptions.

Section 5.2 of the paper: the best event descriptions "cannot be used
directly by RTEC, as they include minor syntactic errors, such as incorrect
names for constants and predicates"; the authors perform "the minimum
required changes", turning e.g. GPT-4o△ into GPT-4o▲. This module
automates the mechanical part of that step and accepts an explicit
reviewer-supplied rename map for the judgement calls (such as o1's
``trawlingArea`` -> ``fishing``, which no string metric can find).

The name resolution itself lives in :mod:`repro.analysis`: the linter's
naming pass (RTEC016) computes the same close-variant renames and attaches
them to diagnostics as machine-applicable fixes; this module applies those
fixes and reports what changed. After correction the result is linted again
(:func:`repro.analysis.analyse`) and the report is attached as
``CorrectionReport.post_lint``, so callers can gate on residual
error-severity diagnostics — the semantic errors correction deliberately
does not touch.

What it fixes (error category 1 only):

* event, fluent, and background-predicate names that normalise to a known
  vocabulary name (case/underscore variants, e.g. ``gapEnd`` ->
  ``gap_end``) or are within a small edit distance of exactly one;
* unknown constants close to a known constant of the knowledge base;
* anything listed in the reviewer's rename maps.

What it deliberately does NOT fix: wrong fluent types, wrong interval
operators (``intersect_all`` vs ``union_all``), dropped conditions,
undefined activities with no close known name — the semantic errors that
Figure 2c then measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro import telemetry
from repro.analysis.diagnostics import Diagnostic, LintReport
from repro.analysis.fixers import rewrite_rule
from repro.analysis.names import levenshtein
from repro.analysis.passes import compute_name_fixes
from repro.llm.pipeline import GeneratedActivity, GeneratedEventDescription
from repro.logic.knowledge import KnowledgeBase
from repro.rtec.description import Vocabulary

__all__ = ["CorrectionReport", "correct_event_description", "levenshtein"]


@dataclass
class CorrectionReport:
    """What the correction step changed, and what it could not fix."""

    functor_renames: Dict[str, str] = field(default_factory=dict)
    constant_renames: Dict[str, str] = field(default_factory=dict)
    unresolved: List[str] = field(default_factory=list)
    #: Lint report of the *corrected* description (the analyser re-run after
    #: the renames). ``post_lint.has_errors`` flags descriptions that still
    #: cannot execute — the gate for downstream use.
    post_lint: Optional[LintReport] = None
    #: Outcome of the iterative repair loop, when correction ran with
    #: ``repair=True`` (:mod:`repro.analysis.repair`); ``None`` otherwise.
    repair: Optional[object] = None

    @property
    def total_changes(self) -> int:
        return len(self.functor_renames) + len(self.constant_renames)

    @property
    def semantic_diagnostics(self) -> List["Diagnostic"]:
        """Abstract-interpretation findings surviving correction (RTEC017-024).

        Renames fix the paper's naming errors (category 1); what the
        semantic layer still flags afterwards — sort clashes, impossible
        values, contradictory or subsumed conditions, unreachable fluents,
        dead terminations — are exactly the residual semantic errors
        Figure 2c measures, so callers can gate or report on them.
        """
        if self.post_lint is None:
            return []
        return [
            d
            for d in self.post_lint.diagnostics
            if d.code is not None and "RTEC017" <= d.code <= "RTEC024"
        ]


def correct_event_description(
    generated: GeneratedEventDescription,
    vocabulary: Vocabulary,
    kb: KnowledgeBase,
    manual_functor_renames: Optional[Mapping[str, str]] = None,
    manual_constant_renames: Optional[Mapping[str, str]] = None,
    repair: bool = False,
    client=None,
    repair_budget: int = 5,
    domain=None,
    outputs=None,
) -> Tuple[GeneratedEventDescription, CorrectionReport]:
    """Return a corrected copy of ``generated`` plus a report of the changes.

    With ``repair=True`` the one-shot rename correction is followed by the
    iterative diagnostic repair loop of :mod:`repro.analysis.repair`:
    analyser diagnostics are auto-fixed where possible and otherwise fed
    back to ``client`` (any LLM client; ``None`` restricts the loop to
    mechanical fixes) until the description is clean, a fixpoint or an
    oscillation is reached, or ``repair_budget`` iterations have run. The
    loop's outcome is attached as ``report.repair`` and ``post_lint`` is
    the final state's report.
    """
    span = telemetry.span(
        "llm.correction", model=generated.model, scheme=generated.scheme
    )
    with span:
        corrected, report = _correct(
            generated,
            vocabulary,
            kb,
            manual_functor_renames,
            manual_constant_renames,
            span,
        )
    if repair:
        from repro.analysis.repair import repair_event_description

        result = repair_event_description(
            corrected,
            vocabulary,
            kb,
            client=client,
            budget=repair_budget,
            domain=domain,
            outputs=outputs,
        )
        corrected = result.generated
        report.repair = result
        report.post_lint = result.final_report
    return corrected, report


def _correct(
    generated: GeneratedEventDescription,
    vocabulary: Vocabulary,
    kb: KnowledgeBase,
    manual_functor_renames: Optional[Mapping[str, str]],
    manual_constant_renames: Optional[Mapping[str, str]],
    span,
) -> Tuple[GeneratedEventDescription, CorrectionReport]:
    from repro.analysis.analyzer import analyse

    report = CorrectionReport()

    functor_map: Dict[str, str] = dict(manual_functor_renames or {})
    constant_map: Dict[str, str] = dict(manual_constant_renames or {})
    report.functor_renames.update(functor_map)
    report.constant_renames.update(constant_map)

    fixes = compute_name_fixes(
        generated.to_event_description(),
        vocabulary,
        kb,
        skip_functors=functor_map,
        skip_constants=constant_map,
    )
    span.count(
        "attempts",
        len(fixes.functor_renames) + len(fixes.constant_renames) + len(fixes.unresolved),
    )
    functor_map.update(fixes.functor_renames)
    constant_map.update(fixes.constant_renames)
    report.functor_renames.update(fixes.functor_renames)
    report.constant_renames.update(fixes.constant_renames)
    report.unresolved.extend("%s %r" % (kind, name) for kind, name in fixes.unresolved)

    corrected_activities: List[GeneratedActivity] = []
    for activity in generated.activities:
        corrected_activities.append(
            GeneratedActivity(
                group=activity.group,
                raw_text=activity.raw_text,
                rules=[
                    rewrite_rule(rule, functor_map, constant_map)
                    for rule in activity.rules
                ],
                parse_error=activity.parse_error,
            )
        )
    corrected = GeneratedEventDescription(
        model=generated.model,
        scheme=generated.scheme,
        activities=corrected_activities,
    )
    report.post_lint = analyse(
        corrected.to_event_description(), vocabulary, kb=kb
    )
    if span.enabled:
        span.count("functor_renames", len(report.functor_renames))
        span.count("constant_renames", len(report.constant_renames))
        span.count("unresolved", len(report.unresolved))
        span.count("post_lint_errors", len(report.post_lint.errors))
        span.count("post_lint_semantic", len(report.semantic_diagnostics))
    return corrected, report
