"""Automated qualitative error assessment (Section 5.2 of the paper).

The paper groups the errors of LLM-generated event descriptions into four
categories:

1. **naming divergence** — "minor divergences ... in the names chosen for
   expressions denoting events, composite activities and background
   knowledge";
2. **wrong fluent type** — "modeling a composite activity definition using
   a different type of fluent than the one used in the hand-crafted event
   description";
3. **undefined activity** — "generated definitions that cannot be used in
   practice, because their conditions include composite activities that
   are not defined in the generated event description";
4. **wrong operator** — "LLMs often fail at capturing definitions that
   include multiple operations between activities", e.g. ``intersect_all``
   in the place of ``union_all``.

This module turns that qualitative discussion into an automated analysis:
given a generated event description and the gold standard, it detects and
reports instances of each category, per activity. The detectors are
conservative — they only report what they can witness structurally — and
additionally report structural omissions (missing rules/conditions) that
fall outside the paper's four categories.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.llm.pipeline import GeneratedEventDescription
from repro.logic.parser import Rule, parse_program
from repro.logic.terms import Compound, Constant, Term
from repro.maritime.gold import ACTIVITY_GROUPS, ActivityGroup
from repro.rtec.description import INTERVAL_CONSTRUCTS, Vocabulary, fluent_key, head_fvp

__all__ = ["ErrorFinding", "ErrorReport", "analyse_errors", "format_report"]

#: The paper's four categories plus our structural catch-alls.
CATEGORIES = (
    "naming-divergence",
    "wrong-fluent-type",
    "undefined-activity",
    "wrong-operator",
    "missing-rule",
    "syntax-error",
)


@dataclass(frozen=True)
class ErrorFinding:
    """One detected error instance."""

    category: str
    activity: str
    detail: str

    def __str__(self) -> str:
        return "[%s] %s: %s" % (self.category, self.activity, self.detail)


@dataclass
class ErrorReport:
    """All findings for one generated event description."""

    model: str
    scheme: str
    findings: List[ErrorFinding] = field(default_factory=list)

    def by_category(self) -> Dict[str, int]:
        counts = Counter(finding.category for finding in self.findings)
        return {category: counts.get(category, 0) for category in CATEGORIES}

    def of_category(self, category: str) -> List[ErrorFinding]:
        return [f for f in self.findings if f.category == category]

    def __len__(self) -> int:
        return len(self.findings)


def _head_kind(rule: Rule) -> Optional[str]:
    head = rule.head
    if not isinstance(head, Compound):
        return None
    if head.functor in ("initiatedAt", "terminatedAt"):
        return "simple"
    if head.functor == "holdsFor":
        return "static"
    return None


def _referenced_functors(rules: Sequence[Rule]) -> Set[str]:
    names: Set[str] = set()

    def walk(term: Term) -> None:
        if isinstance(term, Compound):
            names.add(term.functor)
            for arg in term.args:
                walk(arg)

    for rule in rules:
        walk(rule.head)
        for literal in rule.body:
            walk(literal.term)
    return names


def _constants(rules: Sequence[Rule]) -> Set[str]:
    values: Set[str] = set()

    def walk(term: Term) -> None:
        if isinstance(term, Constant) and isinstance(term.value, str):
            values.add(term.value)
        elif isinstance(term, Compound):
            for arg in term.args:
                walk(arg)

    for rule in rules:
        walk(rule.head)
        for literal in rule.body:
            walk(literal.term)
    return values


def _operator_multiset(rules: Sequence[Rule]) -> Counter:
    counts: Counter = Counter()
    for rule in rules:
        for literal in rule.body:
            term = literal.term
            if isinstance(term, Compound) and term.functor in INTERVAL_CONSTRUCTS:
                counts[term.functor] += 1
    return counts


def analyse_errors(
    generated: GeneratedEventDescription,
    vocabulary: Vocabulary,
    groups: Sequence[ActivityGroup] = ACTIVITY_GROUPS,
) -> ErrorReport:
    """Classify the differences between ``generated`` and the gold rules."""
    report = ErrorReport(model=generated.model, scheme=generated.scheme)
    full_description = generated.to_event_description()
    defined = {key[0] for key in full_description.defined_keys}
    known_functors = (
        {name for name, _ in vocabulary.input_events}
        | {name for name, _ in vocabulary.input_fluents}
        | {name for name, _ in vocabulary.background}
    )

    all_gold_constants: Set[str] = set()
    for group in groups:
        all_gold_constants |= _constants(parse_program(group.rules_text))

    for group in groups:
        gold_rules = parse_program(group.rules_text)
        try:
            generated_activity = generated.activity(group.name)
        except KeyError:
            continue
        if generated_activity.parse_error:
            report.findings.append(
                ErrorFinding(
                    "syntax-error", group.name, generated_activity.parse_error
                )
            )
            continue
        generated_rules = generated_activity.rules
        _check_fluent_types(report, group, gold_rules, generated_rules)
        _check_operators(report, group, gold_rules, generated_rules)
        _check_naming(
            report,
            group,
            gold_rules,
            generated_rules,
            known_functors,
            defined,
            all_gold_constants,
        )
        _check_undefined(report, group, generated_rules, known_functors, defined)
        _check_missing_rules(report, group, gold_rules, generated_rules)
    return report


def _check_fluent_types(
    report: ErrorReport,
    group: ActivityGroup,
    gold_rules: Sequence[Rule],
    generated_rules: Sequence[Rule],
) -> None:
    """Category 2: the same fluent defined with a different rule kind."""
    gold_kinds: Dict[str, Set[str]] = {}
    for rule in gold_rules:
        kind = _head_kind(rule)
        if kind is None:
            continue
        try:
            name = fluent_key(head_fvp(rule)[0])[0]
        except ValueError:
            continue
        gold_kinds.setdefault(name, set()).add(kind)
    for rule in generated_rules:
        kind = _head_kind(rule)
        if kind is None:
            continue
        try:
            name = fluent_key(head_fvp(rule)[0])[0]
        except ValueError:
            continue
        expected = gold_kinds.get(name)
        if expected is not None and kind not in expected:
            report.findings.append(
                ErrorFinding(
                    "wrong-fluent-type",
                    group.name,
                    "%s is %s in the gold standard but defined as a %s fluent"
                    % (name, "/".join(sorted(expected)), kind),
                )
            )
            return  # one finding per group suffices


def _check_operators(
    report: ErrorReport,
    group: ActivityGroup,
    gold_rules: Sequence[Rule],
    generated_rules: Sequence[Rule],
) -> None:
    """Category 4: interval-operator counts diverge (union vs intersect)."""
    gold_ops = _operator_multiset(gold_rules)
    generated_ops = _operator_multiset(generated_rules)
    if gold_ops == generated_ops:
        return
    # Same total number of constructs but a different mix: an operator was
    # swapped, the paper's union_all/intersect_all confusion.
    if sum(gold_ops.values()) == sum(generated_ops.values()) and sum(gold_ops.values()):
        missing = gold_ops - generated_ops
        surplus = generated_ops - gold_ops
        if missing and surplus:
            report.findings.append(
                ErrorFinding(
                    "wrong-operator",
                    group.name,
                    "uses %s in the place of %s"
                    % (
                        ", ".join(sorted(surplus)),
                        ", ".join(sorted(missing)),
                    ),
                )
            )


def _check_naming(
    report: ErrorReport,
    group: ActivityGroup,
    gold_rules: Sequence[Rule],
    generated_rules: Sequence[Rule],
    known_functors: Set[str],
    defined: Set[str],
    all_gold_constants: Set[str],
) -> None:
    """Category 1: names used that neither the vocabulary nor the gold rules know."""
    structural = {
        "happensAt", "holdsAt", "holdsFor", "initiatedAt", "terminatedAt",
        "not", "list", "=", "maxDuration", "initially",
    } | set(INTERVAL_CONSTRUCTS)
    gold_names = _referenced_functors(gold_rules)
    generated_names = _referenced_functors(generated_rules)
    novel = generated_names - gold_names - known_functors - structural - defined
    comparison_ops = {"<", ">", "=<", ">=", "=:=", "=\\="}
    arithmetic = {"plus", "minus", "times", "div", "abs", "min", "max", "angleDiff"}
    for name in sorted(novel - comparison_ops - arithmetic):
        report.findings.append(
            ErrorFinding(
                "naming-divergence",
                group.name,
                "uses the name %r, unknown to both the vocabulary and the "
                "gold definition" % name,
            )
        )
    del gold_rules  # constants are legitimate domain-wide, not per group
    for value in sorted(_constants(generated_rules) - all_gold_constants):
        if value in ("true", "false", "[]"):
            continue
        report.findings.append(
            ErrorFinding(
                "naming-divergence",
                group.name,
                "uses the constant %r instead of a gold-standard one" % value,
            )
        )


def _check_undefined(
    report: ErrorReport,
    group: ActivityGroup,
    generated_rules: Sequence[Rule],
    known_functors: Set[str],
    defined: Set[str],
) -> None:
    """Category 3: holdsAt/holdsFor conditions over undefined activities."""
    for rule in generated_rules:
        for literal in rule.body:
            term = literal.term
            if not (
                isinstance(term, Compound)
                and term.functor in ("holdsAt", "holdsFor")
                and term.arity == 2
            ):
                continue
            pair = term.args[0]
            if not (isinstance(pair, Compound) and pair.functor == "="):
                continue
            try:
                name = fluent_key(pair.args[0])[0]
            except ValueError:
                continue
            if name not in defined and name not in known_functors:
                report.findings.append(
                    ErrorFinding(
                        "undefined-activity",
                        group.name,
                        "condition references %r, which the generated event "
                        "description never defines" % name,
                    )
                )


def _check_missing_rules(
    report: ErrorReport,
    group: ActivityGroup,
    gold_rules: Sequence[Rule],
    generated_rules: Sequence[Rule],
) -> None:
    if len(generated_rules) < len(gold_rules):
        report.findings.append(
            ErrorFinding(
                "missing-rule",
                group.name,
                "%d rules generated for %d gold rules"
                % (len(generated_rules), len(gold_rules)),
            )
        )


def format_report(report: ErrorReport) -> str:
    """Render the per-category counts plus the individual findings."""
    lines = [
        "error assessment for %s (%s): %d finding(s)"
        % (report.model, report.scheme, len(report)),
    ]
    for category, count in report.by_category().items():
        lines.append("  %-20s %d" % (category, count))
    for finding in report.findings:
        lines.append("  - %s" % finding)
    return "\n".join(lines)
