"""High-level generation API: from model name to event description.

Convenience layer used by the examples and the experiment harnesses:
generate with a simulated model, pick the best prompting scheme per model
(as in Figure 2a), and correct the winners (Figure 2b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.generation.correction import CorrectionReport, correct_event_description
from repro.generation.metrics import average_similarity, per_activity_similarities
from repro.llm.interface import LLMClient
from repro.llm.pipeline import GeneratedEventDescription, GenerationPipeline
from repro.llm.profiles import MODEL_NAMES
from repro.llm.prompts import PROMPT_SCHEMES
from repro.llm.simulated import SimulatedLLM
from repro.logic.knowledge import KnowledgeBase
from repro.rtec.description import Vocabulary

__all__ = ["GenerationOutcome", "generate", "generate_best", "generate_all_best"]

#: The reviewer-supplied renames the paper describes performing manually
#: ("we had to rename constant 'trawlingArea' as 'fishing'").
MANUAL_CONSTANT_RENAMES: Dict[str, Dict[str, str]] = {
    "o1": {"trawlingArea": "fishing"},
}


@dataclass
class GenerationOutcome:
    """A generated event description together with its similarity summary."""

    generated: GeneratedEventDescription
    average_similarity: float
    activity_similarities: Dict[str, float]

    @property
    def model(self) -> str:
        return self.generated.model

    @property
    def scheme(self) -> str:
        return self.generated.scheme


def generate(
    model: str,
    scheme: str,
    seed: int = 0,
    client: Optional[LLMClient] = None,
) -> GenerationOutcome:
    """Generate an event description with one model under one scheme."""
    if client is None:
        client = SimulatedLLM(model, seed=seed)
    generated = GenerationPipeline(client, scheme).run()
    return GenerationOutcome(
        generated=generated,
        average_similarity=average_similarity(generated),
        activity_similarities=per_activity_similarities(generated),
    )


def generate_best(model: str, seed: int = 0) -> GenerationOutcome:
    """Generate with both schemes and keep the higher-similarity one,
    exactly as the X-square / X-triangle selection of Figure 2a."""
    outcomes = [generate(model, scheme, seed=seed) for scheme in PROMPT_SCHEMES]
    return max(outcomes, key=lambda outcome: outcome.average_similarity)


def generate_all_best(
    models: Sequence[str] = MODEL_NAMES, seed: int = 0
) -> Dict[str, GenerationOutcome]:
    """The best generation per model, for all models of the evaluation."""
    return {model: generate_best(model, seed=seed) for model in models}


def correct_outcome(
    outcome: GenerationOutcome,
    vocabulary: Vocabulary,
    kb: KnowledgeBase,
) -> Tuple[GenerationOutcome, CorrectionReport]:
    """Apply minimal syntactic correction (the square/triangle -> filled
    square/triangle step of Figure 2b) and re-measure similarity."""
    corrected, report = correct_event_description(
        outcome.generated,
        vocabulary,
        kb,
        manual_constant_renames=MANUAL_CONSTANT_RENAMES.get(outcome.model, {}),
    )
    return (
        GenerationOutcome(
            generated=corrected,
            average_similarity=average_similarity(corrected),
            activity_similarities=per_activity_similarities(corrected),
        ),
        report,
    )
