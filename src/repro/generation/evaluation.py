"""Predictive accuracy of generated event descriptions (Figure 2c).

The paper's second experiment runs RTEC with a corrected LLM-generated
event description over the AIS stream, and compares the recognised
time-points against the detections of the hand-crafted definitions:
time-points detected by both make up the true positives; time-points
detected only by the generated (hand-crafted) definition are false
positives (negatives). Precision, recall and F1 are computed per composite
activity, aggregating over all ground instances (e.g. every vessel's
``trawling``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.intervals import IntervalList, intersect_all, relative_complement_all
from repro.logic.terms import Term
from repro.maritime.dataset import MaritimeDataset
from repro.maritime.gold import COMPOSITE_ACTIVITIES
from repro.rtec.description import EventDescription
from repro.rtec.engine import RTECEngine
from repro.rtec.result import RecognitionResult

__all__ = ["ActivityScore", "score_activity", "score_activities", "run_recognition"]


@dataclass(frozen=True)
class ActivityScore:
    """Time-point-level confusion counts for one composite activity."""

    activity: str
    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if p + r else 0.0

    @property
    def undetected(self) -> bool:
        """True when neither description recognised the activity at all."""
        return not (self.true_positives or self.false_positives or self.false_negatives)


def run_recognition(
    description: EventDescription,
    dataset: MaritimeDataset,
    window: Optional[int] = None,
    strict: bool = False,
) -> RecognitionResult:
    """Run RTEC with ``description`` over the dataset's stream.

    Generated descriptions are executed tolerantly (``strict=False``,
    ``skip_errors=True``): malformed rules are skipped rather than aborting
    the run, mirroring how a practitioner would execute a best-effort
    definition set.
    """
    engine = RTECEngine(
        description,
        dataset.kb,
        dataset.vocabulary,
        strict=strict,
        skip_errors=not strict,
    )
    return engine.recognise(dataset.stream, dataset.input_fluents, window=window)


def score_activity(
    gold: RecognitionResult,
    candidate: RecognitionResult,
    activity: str,
) -> ActivityScore:
    """Confusion counts for one activity, aggregated over ground instances."""
    gold_instances: Dict[Term, IntervalList] = dict(gold.instances(activity))
    candidate_instances: Dict[Term, IntervalList] = dict(candidate.instances(activity))
    tp = fp = fn = 0
    for pair in set(gold_instances) | set(candidate_instances):
        gold_intervals = gold_instances.get(pair, IntervalList.empty())
        candidate_intervals = candidate_instances.get(pair, IntervalList.empty())
        if gold_intervals and candidate_intervals:
            overlap = intersect_all([gold_intervals, candidate_intervals])
            tp += overlap.total_duration
            fp += relative_complement_all(candidate_intervals, [gold_intervals]).total_duration
            fn += relative_complement_all(gold_intervals, [candidate_intervals]).total_duration
        elif candidate_intervals:
            fp += candidate_intervals.total_duration
        else:
            fn += gold_intervals.total_duration
    return ActivityScore(activity, tp, fp, fn)


def score_activities(
    gold: RecognitionResult,
    candidate: RecognitionResult,
    activities: Sequence[str] = COMPOSITE_ACTIVITIES,
) -> Dict[str, ActivityScore]:
    """Per-activity scores for all composite activities of Figure 2c."""
    return {name: score_activity(gold, candidate, name) for name in activities}
