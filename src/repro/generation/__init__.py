"""End-to-end activity definition generation, correction and evaluation.

The paper's primary contribution glued together: generate RTEC event
descriptions from natural-language activity descriptions via a (simulated)
LLM, measure their similarity to the gold standard (Figure 2a), correct
minor syntactic errors (Figure 2b), and evaluate predictive accuracy when
RTEC executes them over the AIS stream (Figure 2c).
"""

from repro.generation.correction import (
    CorrectionReport,
    correct_event_description,
    levenshtein,
)
from repro.generation.error_analysis import (
    ErrorFinding,
    ErrorReport,
    analyse_errors,
    format_report,
)
from repro.generation.evaluation import (
    ActivityScore,
    run_recognition,
    score_activities,
    score_activity,
)
from repro.generation.generator import (
    GenerationOutcome,
    MANUAL_CONSTANT_RENAMES,
    correct_outcome,
    generate,
    generate_all_best,
    generate_best,
)
from repro.generation.metrics import (
    activity_similarity,
    average_similarity,
    headline_rules,
    per_activity_similarities,
)

__all__ = [
    "CorrectionReport",
    "correct_event_description",
    "levenshtein",
    "ErrorFinding",
    "ErrorReport",
    "analyse_errors",
    "format_report",
    "ActivityScore",
    "run_recognition",
    "score_activities",
    "score_activity",
    "GenerationOutcome",
    "MANUAL_CONSTANT_RENAMES",
    "correct_outcome",
    "generate",
    "generate_all_best",
    "generate_best",
    "activity_similarity",
    "average_similarity",
    "headline_rules",
    "per_activity_similarities",
]
