"""Per-activity and whole-description similarity of generated definitions.

Figure 2a/2b of the paper report, per composite activity, the similarity
between its LLM-generated and hand-crafted definitions, plus an average
over all activity definitions. Per-activity similarity compares the rules
defining the activity's *headline* fluent (e.g. ``trawling/1``) — this is
what makes a wrong-fluent-type definition score exactly 0, as the paper
observes for Gemma-2's trawling — while the average is taken over the
full rule groups of every activity in the event description.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.llm.pipeline import GeneratedEventDescription
from repro.logic.parser import Rule, parse_program
from repro.maritime.gold import ACTIVITY_GROUPS, ActivityGroup
from repro.rtec.description import fluent_key, head_fvp
from repro.similarity import event_description_similarity

__all__ = [
    "headline_rules",
    "activity_similarity",
    "per_activity_similarities",
    "average_similarity",
]


def headline_rules(rules: Sequence[Rule], headline: str) -> List[Rule]:
    """The rules of ``rules`` whose head defines the fluent named ``headline``."""
    selected: List[Rule] = []
    for rule in rules:
        try:
            fluent, _value = head_fvp(rule)
        except ValueError:
            continue
        if fluent_key(fluent)[0] == headline:
            selected.append(rule)
    return selected


def _group_by_name(name: str) -> ActivityGroup:
    for group in ACTIVITY_GROUPS:
        if group.name == name:
            return group
    raise KeyError("unknown activity group %r" % name)


def activity_similarity(generated: GeneratedEventDescription, group_name: str) -> float:
    """Similarity of one activity's headline-fluent definition to the gold one."""
    group = _group_by_name(group_name)
    headline = group.fluents[-1][0]
    gold_subset = headline_rules(parse_program(group.rules_text), headline)
    generated_subset = headline_rules(generated.rules_for(group_name), headline)
    return event_description_similarity(generated_subset, gold_subset)


def per_activity_similarities(
    generated: GeneratedEventDescription,
    group_names: Sequence[str] = None,
) -> Dict[str, float]:
    """Headline similarities for the given groups (default: all groups)."""
    if group_names is None:
        group_names = [group.name for group in ACTIVITY_GROUPS]
    return {name: activity_similarity(generated, name) for name in group_names}


def average_similarity(generated: GeneratedEventDescription) -> float:
    """The 'all' bar of Figure 2a: mean full-group similarity over every
    activity definition in the event description."""
    scores: List[float] = []
    for group in ACTIVITY_GROUPS:
        gold_rules = parse_program(group.rules_text)
        scores.append(
            event_description_similarity(generated.rules_for(group.name), gold_rules)
        )
    return sum(scores) / len(scores)
