"""Per-model, per-scheme error profiles for the simulated LLMs.

A profile maps each activity group to the transformations the simulated
model applies to its internal knowledge of the definition (the gold rules)
before emitting it. The profiles are calibrated to reproduce the paper's
observations (Section 5.2 and Figure 2):

* **o1 (few-shot best)** — near-gold output; renames the constant
  ``fishing`` to ``trawlingArea`` (the correction discussed for o1■), adds
  one redundant condition to the trawling rule, and formalises loitering in
  a syntactically different but semantically equivalent way (perfect
  f1-score despite imperfect similarity).
* **GPT-4o (chain-of-thought best)** — models ``movingSpeed`` with a
  statically determined fluent instead of a simple one (wrong fluent
  type), confuses ``union_all`` with ``intersect_all`` in loitering (a rule
  that is never satisfied), weakens pilot boarding, and introduces minor
  correctable naming divergences.
* **Llama-3 (few-shot best)** — confuses ``union_all`` with
  ``intersect_all`` in loitering, drops the pilot-vessel type constraint in
  pilot boarding, plus correctable naming divergences.
* **GPT-4 (few-shot best)** — a trawling definition that matches none of
  the gold conditions and references an undefined activity; dropped rules
  and weakened definitions elsewhere.
* **Mistral (chain-of-thought best)** — malformed and mismatched
  definitions for several statically determined activities.
* **Gemma-2 (chain-of-thought best)** — expresses trawling (and other
  statically determined activities) as simple fluents: similarity 0 for
  trawling, as in the paper.

The weaker scheme of each model is the strong profile plus extra
degradations, so the best-scheme selection of Figure 2a picks the
documented scheme.
"""

from __future__ import annotations

from typing import Dict, List

from repro.llm.errors import (
    AddCondition,
    CorruptSyntax,
    DropCondition,
    DropRule,
    RenameConstant,
    RenameFunctor,
    RenameVariable,
    ReplaceRules,
    SwapArguments,
    SwapOperator,
    Transformation,
    TruncateRules,
)
from repro.llm.prompts import CHAIN_OF_THOUGHT, FEW_SHOT, ZERO_SHOT

__all__ = ["MODEL_NAMES", "BEST_SCHEME", "profile_for", "Profile"]

#: The six models of the paper's evaluation.
MODEL_NAMES = ("gpt-4", "gpt-4o", "o1", "llama-3", "mistral", "gemma-2")

#: The prompting scheme with the highest similarity per model (Figure 2a):
#: square = few-shot, triangle = chain-of-thought.
BEST_SCHEME: Dict[str, str] = {
    "gpt-4": FEW_SHOT,
    "gpt-4o": CHAIN_OF_THOUGHT,
    "o1": FEW_SHOT,
    "llama-3": FEW_SHOT,
    "mistral": CHAIN_OF_THOUGHT,
    "gemma-2": CHAIN_OF_THOUGHT,
}

Profile = Dict[str, List[Transformation]]

# ---------------------------------------------------------------------------
# Alternative formalisations emitted wholesale (error category 2)
# ---------------------------------------------------------------------------

# o1: loitering through the already-defined lowSpeedOrStopped fluent —
# not syntactically equivalent to the gold rule, but the same meaning.
_O1_LOITERING = """
holdsFor(loitering(Vessel)=true, I) :-
    holdsFor(lowSpeedOrStopped(Vessel)=true, Ils),
    holdsFor(anchoredOrMoored(Vessel)=true, Ia),
    relative_complement_all(Ils, [Ia], I).
"""

# GPT-4o: movingSpeed as a statically determined fluent (the paper's
# example of the wrong-fluent-type error). Acyclic but semantically wrong.
_GPT4O_MOVING_SPEED = """
holdsFor(movingSpeed(Vessel)=below, I) :-
    holdsFor(lowSpeed(Vessel)=true, Il),
    union_all([Il], I).

holdsFor(movingSpeed(Vessel)=normal, I) :-
    holdsFor(changingSpeed(Vessel)=true, Ic),
    holdsFor(lowSpeed(Vessel)=true, Il),
    holdsFor(stopped(Vessel)=nearPorts, Isn),
    holdsFor(stopped(Vessel)=farFromPorts, Isf),
    union_all([Il, Isn, Isf], Islow),
    relative_complement_all(Ic, [Islow], I).
"""

# GPT-4: a verbose trawling re-formalisation matching none of the gold
# conditions, with an undefined 'fishingOperation' activity (category 3).
_GPT4_TRAWLING = """
initiatedAt(trawlSpeed(Vessel)=true, T) :-
    happensAt(velocity(Vessel, Speed, CourseOverGround, TrueHeading), T),
    thresholds(trawlspeedMin, TrawlspeedMin),
    Speed >= TrawlspeedMin,
    holdsAt(fishingOperation(Vessel)=true, T).

terminatedAt(trawlSpeed(Vessel)=true, T) :-
    happensAt(stop_start(Vessel), T).

holdsFor(trawling(Vessel)=true, I) :-
    holdsFor(trawlSpeed(Vessel)=true, Is),
    holdsFor(withinArea(Vessel, natura)=true, Iw),
    holdsFor(underWay(Vessel)=true, Iu),
    holdsFor(changingSpeed(Vessel)=true, Ic),
    holdsFor(lowSpeed(Vessel)=true, Il),
    intersect_all([Is, Iw, Iu], Ia),
    union_all([Ia, Ic, Il], I).
"""

# GPT-4: search and rescue without the movement component.
_GPT4_SAR = """
initiatedAt(sarSpeed(Vessel)=true, T) :-
    happensAt(velocity(Vessel, Speed, CourseOverGround, TrueHeading), T),
    vesselType(Vessel, sar),
    thresholds(sarMinSpeed, SarMinSpeed),
    Speed >= SarMinSpeed.

terminatedAt(sarSpeed(Vessel)=true, T) :-
    happensAt(velocity(Vessel, Speed, CourseOverGround, TrueHeading), T),
    thresholds(sarMinSpeed, SarMinSpeed),
    Speed < SarMinSpeed.

holdsFor(searchAndRescue(Vessel)=true, I) :-
    holdsFor(sarSpeed(Vessel)=true, Is),
    union_all([Is], I).
"""

# Mistral: trawling with happensAt/holdsAt conditions inside a holdsFor
# rule — a malformed definition that "cannot be used in practice".
_MISTRAL_TRAWLING = """
holdsFor(trawling(Vessel)=true, I) :-
    holdsFor(withinArea(Vessel, fishing)=true, I),
    happensAt(change_in_heading(Vessel), T),
    holdsAt(movingSpeed(Vessel)=below, T),
    vesselType(Vessel, fishing).
"""

# Mistral: loitering as a simple fluent (wrong type).
_MISTRAL_LOITERING = """
initiatedAt(loitering(Vessel)=true, T) :-
    happensAt(slow_motion_start(Vessel), T),
    not holdsAt(withinArea(Vessel, nearPorts)=true, T).

terminatedAt(loitering(Vessel)=true, T) :-
    happensAt(slow_motion_end(Vessel), T).
"""

# Gemma-2: trawling as a simple fluent — the similarity-0 case of Fig. 2a.
_GEMMA_TRAWLING = """
initiatedAt(trawling(Vessel)=true, T) :-
    happensAt(entersArea(Vessel, Area), T),
    areaType(Area, fishing),
    vesselType(Vessel, fishing).

terminatedAt(trawling(Vessel)=true, T) :-
    happensAt(leavesArea(Vessel, Area), T),
    areaType(Area, fishing).
"""

# Gemma-2: tugging as a simple fluent referencing an undefined event.
_GEMMA_TUGGING = """
initiatedAt(tugging(Vessel1, Vessel2)=true, T) :-
    happensAt(towingStart(Vessel1, Vessel2), T),
    oneIsTug(Vessel1, Vessel2).

terminatedAt(tugging(Vessel1, Vessel2)=true, T) :-
    happensAt(towingEnd(Vessel1, Vessel2), T).
"""

# Gemma-2: search and rescue as a simple fluent.
_GEMMA_SAR = """
initiatedAt(searchAndRescue(Vessel)=true, T) :-
    happensAt(change_in_heading(Vessel), T),
    vesselType(Vessel, sar).

terminatedAt(searchAndRescue(Vessel)=true, T) :-
    happensAt(stop_start(Vessel), T).
"""

# Gemma-2: anchoredOrMoored as a simple fluent.
_GEMMA_ANCHORED = """
initiatedAt(anchoredOrMoored(Vessel)=true, T) :-
    happensAt(stop_start(Vessel), T),
    holdsAt(withinArea(Vessel, anchorage)=true, T).

terminatedAt(anchoredOrMoored(Vessel)=true, T) :-
    happensAt(stop_end(Vessel), T).
"""

#: The redundant-but-harmless condition added to the trawling rule by the
#: three strongest models ("introducing only one redundant condition").
_REDUNDANT_TRAWLING = AddCondition(
    rule_index=8,
    condition="holdsFor(underWay(Vessel)=true, Iu)",
    position=2,
)

# ---------------------------------------------------------------------------
# Best-scheme profiles
# ---------------------------------------------------------------------------

_O1_BEST: Profile = {
    "withinArea": [RenameVariable("Area", "AreaID")],
    "movingSpeed": [RenameVariable("Vessel", "Vl")],
    "trawling": [RenameConstant("fishing", "trawlingArea"), _REDUNDANT_TRAWLING],
    "loitering": [ReplaceRules(_O1_LOITERING)],
    "changingSpeed": [DropRule(2)],  # forgotten gap termination
    "highSpeedNearCoast": [
        AddCondition(0, "holdsAt(underWay(Vessel)=true, T)"),  # redundant
    ],
}

_GPT4O_BEST: Profile = {
    "movingSpeed": [ReplaceRules(_GPT4O_MOVING_SPEED)],
    "loitering": [SwapOperator("union_all", "intersect_all", rule_index=0)],
    "pilotBoarding": [SwapOperator("intersect_all", "union_all", rule_index=1)],
    "trawling": [
        _REDUNDANT_TRAWLING,
        RenameFunctor("change_in_heading", "changeInHeading"),
    ],
    "highSpeedNearCoast": [RenameConstant("nearCoast", "nearcoast")],
    "tugging": [RenameVariable("Vessel", "V")],
    "stopped": [DropRule(5)],  # forgotten gap termination (farFromPorts)
}

_LLAMA3_BEST: Profile = {
    "loitering": [SwapOperator("union_all", "intersect_all", rule_index=0)],
    "pilotBoarding": [DropCondition(rule_index=1, condition_index=1)],  # oneIsPilot
    "trawling": [_REDUNDANT_TRAWLING, RenameConstant("fishing", "fisheries")],
    "communicationGap": [RenameFunctor("gap_end", "gapEnd")],
    "stopped": [DropRule(4), RenameFunctor("stop_end", "stopEnd")],
    "tugging": [RenameFunctor("gap_start", "gapStart")],
    "searchAndRescue": [RenameFunctor("change_in_heading", "changeInHeading")],
    "drifting": [DropRule(2)],
    "movingSpeed": [RenameVariable("Vessel", "Vl")],
    # Correctable naming divergences (camel-case variants of the input
    # event names): large similarity hit, no effect after correction.
    "lowSpeed": [
        RenameFunctor("slow_motion_start", "slowMotionStart"),
        RenameFunctor("slow_motion_end", "slowMotionEnd"),
    ],
    "changingSpeed": [
        RenameFunctor("change_in_speed_start", "changeInSpeedStart"),
        RenameFunctor("change_in_speed_end", "changeInSpeedEnd"),
    ],
    "withinArea": [RenameFunctor("entersArea", "entersarea")],
}

_GPT4_BEST: Profile = {
    "trawling": [ReplaceRules(_GPT4_TRAWLING)],
    "searchAndRescue": [ReplaceRules(_GPT4_SAR)],
    "anchoredOrMoored": [SwapOperator("intersect_all", "union_all", rule_index=0)],
    "pilotBoarding": [
        DropCondition(rule_index=1, condition_index=0),  # proximity
        RenameFunctor("lowSpeedOrStopped", "slowOrIdle"),
    ],
    "stopped": [
        AddCondition(0, "holdsAt(atBerth(Vessel)=true, T)"),  # undefined activity
        DropRule(5),
    ],
    "movingSpeed": [DropRule(7), DropRule(6)],
    "highSpeedNearCoast": [DropRule(2), RenameFunctor("velocity", "speedReport")],
    "drifting": [DropCondition(rule_index=0, condition_index=3)],  # underWay check
    "loitering": [DropCondition(rule_index=0, condition_index=3)],
    "communicationGap": [SwapArguments("withinArea")],
    "underWay": [SwapOperator("union_all", "intersect_all", rule_index=0)],
    "tugging": [
        DropCondition(rule_index=4, condition_index=1),  # oneIsTug
        DropRule(3),
        RenameFunctor("gap_start", "transmissionLost"),
    ],
    "lowSpeed": [DropRule(2), DropRule(1)],
    "withinArea": [RenameFunctor("leavesArea", "exitsRegion")],
}

_MISTRAL_BEST: Profile = {
    "trawling": [ReplaceRules(_MISTRAL_TRAWLING)],
    "loitering": [ReplaceRules(_MISTRAL_LOITERING)],
    "tugging": [
        DropRule(3),
        DropCondition(rule_index=4, condition_index=1),  # oneIsTug
        RenameFunctor("proximity", "closeTo"),
    ],
    "pilotBoarding": [
        SwapOperator("union_all", "intersect_all", rule_index=0),
        AddCondition(1, "holdsFor(boarding(Vessel1)=true, Ib)", position=3),  # undefined
    ],
    "searchAndRescue": [
        AddCondition(6, "holdsFor(patrolling(Vessel)=true, Ip)", position=2),  # undefined
        DropRule(5),
        DropRule(2),
    ],
    "movingSpeed": [DropRule(8), DropRule(7), DropRule(6), DropRule(5)],
    "highSpeedNearCoast": [DropRule(3), RenameConstant("nearCoast", "coastalZone")],
    "anchoredOrMoored": [DropCondition(rule_index=0, condition_index=3)],
    "drifting": [RenameFunctor("angleDiff", "headingDelta")],
    "stopped": [DropRule(5), DropRule(4)],
    "changingSpeed": [DropRule(2), DropRule(1)],
    "underWay": [SwapOperator("union_all", "intersect_all", rule_index=0)],
    "lowSpeed": [DropRule(2)],
}

_GEMMA2_BEST: Profile = {
    "trawling": [ReplaceRules(_GEMMA_TRAWLING)],
    "tugging": [ReplaceRules(_GEMMA_TUGGING)],
    "searchAndRescue": [ReplaceRules(_GEMMA_SAR)],
    "anchoredOrMoored": [ReplaceRules(_GEMMA_ANCHORED)],
    "loitering": [SwapOperator("union_all", "intersect_all", rule_index=0)],
    "pilotBoarding": [
        DropCondition(rule_index=1, condition_index=1),
        RenameFunctor("proximity", "nearEachOther"),
    ],
    "movingSpeed": [DropRule(8), DropRule(7), DropRule(6), DropRule(4), DropRule(3)],
    "highSpeedNearCoast": [
        DropRule(3),
        DropRule(2),
        AddCondition(0, "holdsAt(speeding(Vessel)=true, T)"),  # undefined
    ],
    "drifting": [DropRule(3), DropRule(2), RenameFunctor("velocity", "velocityReport")],
    "stopped": [DropRule(5), DropRule(4), DropRule(3)],
    "communicationGap": [RenameFunctor("gap_start", "gapBegins")],
    "lowSpeed": [DropRule(2)],
}

# ---------------------------------------------------------------------------
# Degradations applied to the weaker scheme of each model
# ---------------------------------------------------------------------------

_O1_WEAK_EXTRA: Profile = {
    "trawling": [DropRule(4)],
    "drifting": [DropRule(3)],
    "tugging": [RenameFunctor("proximity", "vicinity")],
    "stopped": [DropRule(5)],
}

_GPT4O_WEAK_EXTRA: Profile = {
    "trawling": [ReplaceRules(_GPT4_TRAWLING)],
    "searchAndRescue": [DropRule(5), DropRule(4)],
    "anchoredOrMoored": [DropCondition(rule_index=0, condition_index=3)],
    "drifting": [DropRule(3)],
}

_LLAMA3_WEAK_EXTRA: Profile = {
    "trawling": [DropRule(7), DropRule(4)],
    "anchoredOrMoored": [SwapOperator("intersect_all", "union_all", rule_index=0)],
    "highSpeedNearCoast": [DropRule(3)],
    "searchAndRescue": [DropRule(5)],
}

_GPT4_WEAK_EXTRA: Profile = {
    "tugging": [ReplaceRules(_GEMMA_TUGGING)],
    "lowSpeed": [DropRule(2)],
    "withinArea": [DropRule(2)],
    "changingSpeed": [DropRule(2)],
}

_MISTRAL_WEAK_EXTRA: Profile = {
    "anchoredOrMoored": [ReplaceRules(_GEMMA_ANCHORED)],
    "drifting": [DropRule(3), DropRule(2)],
    "withinArea": [RenameFunctor("entersArea", "enterArea")],
    "communicationGap": [DropRule(3)],
}

_GEMMA2_WEAK_EXTRA: Profile = {
    "loitering": [ReplaceRules(_MISTRAL_LOITERING)],
    "pilotBoarding": [DropRule(0)],
    "withinArea": [DropRule(2), RenameFunctor("entersArea", "areaEntry")],
    "underWay": [SwapOperator("union_all", "intersect_all", rule_index=0)],
    "changingSpeed": [DropRule(2), DropRule(1)],
}


def _merge(base: Profile, extra: Profile) -> Profile:
    merged: Profile = {name: list(transformations) for name, transformations in base.items()}
    for name, transformations in extra.items():
        merged.setdefault(name, [])
        merged[name] = merged[name] + list(transformations)
    return merged


_BEST_PROFILES: Dict[str, Profile] = {
    "o1": _O1_BEST,
    "gpt-4o": _GPT4O_BEST,
    "llama-3": _LLAMA3_BEST,
    "gpt-4": _GPT4_BEST,
    "mistral": _MISTRAL_BEST,
    "gemma-2": _GEMMA2_BEST,
}

_WEAK_EXTRAS: Dict[str, Profile] = {
    "o1": _O1_WEAK_EXTRA,
    "gpt-4o": _GPT4O_WEAK_EXTRA,
    "llama-3": _LLAMA3_WEAK_EXTRA,
    "gpt-4": _GPT4_WEAK_EXTRA,
    "mistral": _MISTRAL_WEAK_EXTRA,
    "gemma-2": _GEMMA2_WEAK_EXTRA,
}


def _zero_shot_profile(model: str) -> Profile:
    """Zero-shot degradation: without the worked examples of prompt F the
    model has never seen either fluent kind, so it sketches a single rule
    per activity and frequently breaks the syntax (the paper found
    zero-shot prompting "produced poor results").
    """
    from repro.maritime.gold import ACTIVITY_GROUPS

    weak_scheme = FEW_SHOT if BEST_SCHEME[model] == CHAIN_OF_THOUGHT else CHAIN_OF_THOUGHT
    profile = _merge(_BEST_PROFILES[model], _WEAK_EXTRAS[model])
    for index, group in enumerate(ACTIVITY_GROUPS):
        extra: List[Transformation] = [TruncateRules(1)]
        # A deterministic third of the replies are syntactically broken.
        if (hash(model) + index) % 3 == 0:
            extra.append(CorruptSyntax("drop-final-period"))
        profile.setdefault(group.name, [])
        profile[group.name] = profile[group.name] + extra
    del weak_scheme  # the merge above already folds in the weak extras
    return profile


def profile_for(model: str, scheme: str) -> Profile:
    """The error profile of ``model`` under prompting ``scheme``."""
    if model not in _BEST_PROFILES:
        raise KeyError("unknown model %r; known: %s" % (model, MODEL_NAMES))
    if scheme == ZERO_SHOT:
        return _zero_shot_profile(model)
    if scheme not in (FEW_SHOT, CHAIN_OF_THOUGHT):
        raise ValueError("unknown prompting scheme %r" % scheme)
    best = _BEST_PROFILES[model]
    if scheme == BEST_SCHEME[model]:
        return {name: list(transformations) for name, transformations in best.items()}
    return _merge(best, _WEAK_EXTRAS[model])
