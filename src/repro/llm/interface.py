"""The LLM client protocol.

The generation pipeline talks to any chat-completion backend through
:class:`LLMClient`. The reproduction ships :class:`~repro.llm.simulated.SimulatedLLM`
(no network access is available in this environment); a thin adapter over
the OpenAI or Groq SDKs — the backends used by the paper — only needs to
implement :meth:`LLMClient.complete`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

__all__ = ["ChatMessage", "LLMClient"]


@dataclass(frozen=True)
class ChatMessage:
    """One message of a chat conversation."""

    role: str  # 'system' | 'user' | 'assistant'
    content: str

    def __post_init__(self) -> None:
        if self.role not in ("system", "user", "assistant"):
            raise ValueError("unknown chat role %r" % self.role)


@runtime_checkable
class LLMClient(Protocol):
    """A chat-completion backend."""

    @property
    def model_name(self) -> str:
        """The model identifier (e.g. ``"o1"``)."""
        ...

    def complete(self, conversation: Sequence[ChatMessage]) -> str:
        """Return the assistant's reply to ``conversation``."""
        ...
