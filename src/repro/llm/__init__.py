"""The LLM substrate: prompts, client protocol, simulated models, pipeline.

The paper generates activity definitions with GPT-4, GPT-4o, o1, Llama-3,
Mistral and Gemma-2 through the OpenAI and Groq APIs; this reproduction
substitutes seeded :class:`~repro.llm.simulated.SimulatedLLM` backends with
per-model error profiles (see DESIGN.md, "Substitutions"). The pipeline
itself (:class:`~repro.llm.pipeline.GenerationPipeline`) is
backend-agnostic: point it at any :class:`~repro.llm.interface.LLMClient`.
"""

from repro.llm.interface import ChatMessage, LLMClient
from repro.llm.pipeline import (
    DomainSpec,
    GeneratedActivity,
    GeneratedEventDescription,
    GenerationPipeline,
)
from repro.llm.profiles import BEST_SCHEME, MODEL_NAMES, profile_for
from repro.llm.prompts import (
    CHAIN_OF_THOUGHT,
    FEW_SHOT,
    PROMPT_SCHEMES,
    prompt_e,
    prompt_f,
    prompt_g,
    prompt_r,
    prompt_t,
)
from repro.llm.simulated import SimulatedLLM

__all__ = [
    "ChatMessage",
    "LLMClient",
    "DomainSpec",
    "GeneratedActivity",
    "GeneratedEventDescription",
    "GenerationPipeline",
    "BEST_SCHEME",
    "MODEL_NAMES",
    "profile_for",
    "CHAIN_OF_THOUGHT",
    "FEW_SHOT",
    "PROMPT_SCHEMES",
    "prompt_e",
    "prompt_f",
    "prompt_g",
    "prompt_r",
    "prompt_t",
    "SimulatedLLM",
]
