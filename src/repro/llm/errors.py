"""Error-injection transformations for simulated LLM generation.

The paper's qualitative error assessment (Section 5.2) groups the errors of
LLM-generated event descriptions into four categories:

1. minor naming divergences for events, activities and background
   knowledge (:class:`RenameFunctor`, :class:`RenameConstant`);
2. modelling an activity with the wrong fluent type, or otherwise
   re-formalising it from scratch (:class:`ReplaceRules`);
3. conditions referencing activities that are undefined in the generated
   event description (:class:`AddCondition` with an undefined fluent);
4. wrong operators between activities — most prominently confusing
   ``union_all`` with ``intersect_all`` (:class:`SwapOperator`).

Each transformation rewrites a parsed rule list; a simulated model's
profile is a per-activity composition of transformations applied to the
gold-standard rules — the simulated counterpart of a pre-trained model
reproducing a definition imperfectly.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence

from repro.logic.parser import Literal, Rule, parse_program, parse_term
from repro.logic.terms import Compound, Constant, Term, Variable

__all__ = [
    "Transformation",
    "RenameFunctor",
    "RenameConstant",
    "RenameVariable",
    "SwapOperator",
    "SwapArguments",
    "DropRule",
    "DropCondition",
    "AddCondition",
    "ReplaceRules",
    "apply_all",
]


def _rewrite(term: Term, fn) -> Term:
    """Bottom-up term rewriting: ``fn`` maps each node to a node."""
    if isinstance(term, Compound):
        rebuilt = Compound(term.functor, tuple(_rewrite(arg, fn) for arg in term.args))
        return fn(rebuilt)
    return fn(term)


def _rewrite_rule(rule: Rule, fn) -> Rule:
    head = _rewrite(rule.head, fn)
    body = tuple(Literal(_rewrite(lit.term, fn), lit.negated) for lit in rule.body)
    return Rule(head, body)


_RESERVED_NAMES = frozenset(
    {
        "initiatedAt",
        "terminatedAt",
        "holdsAt",
        "holdsFor",
        "happensAt",
        "union_all",
        "intersect_all",
        "relative_complement_all",
        "not",
        "true",
        "false",
        "thresholds",
    }
)


def _identifier_names(text: str) -> FrozenSet[str]:
    """Lowercase-initial identifiers of a rule text, minus the reserved ones."""
    names = set(re.findall(r"\b[a-z][A-Za-z0-9_]*\b", text))
    return frozenset(names - _RESERVED_NAMES)


def _term_names(term: Term) -> FrozenSet[str]:
    """Functors and symbolic constants appearing in a term."""
    names = set()

    def walk(node: Term) -> None:
        if isinstance(node, Compound):
            if node.functor not in _RESERVED_NAMES:
                names.add(node.functor)
            for arg in node.args:
                walk(arg)
        elif isinstance(node, Constant) and isinstance(node.value, str):
            if node.value not in _RESERVED_NAMES:
                names.add(node.value)

    walk(term)
    return frozenset(names)


class Transformation:
    """Base class; subclasses override :meth:`apply`."""

    def apply(self, rules: List[Rule], rng: random.Random) -> List[Rule]:
        raise NotImplementedError

    def introduced_names(self, gold_rules: Sequence[Rule]) -> FrozenSet[str]:
        """The names this transformation's error surfaces under.

        The repair loop uses these as a *fingerprint*: a diagnostic batch
        mentioning one of these names (as a whole word) implicates the
        transformation, and the simulated model drops it on the next
        round. An empty set means the transformation is never implicated
        by name (e.g. consistent variable renamings are harmless).
        """
        return frozenset()


@dataclass(frozen=True)
class RenameFunctor(Transformation):
    """Rename a predicate/fluent/event functor throughout the rules
    (error category 1 — e.g. ``gap_start`` -> ``gapStart``)."""

    old: str
    new: str

    def apply(self, rules: List[Rule], rng: random.Random) -> List[Rule]:
        def fn(term: Term) -> Term:
            if isinstance(term, Compound) and term.functor == self.old:
                return Compound(self.new, term.args)
            return term

        return [_rewrite_rule(rule, fn) for rule in rules]

    def introduced_names(self, gold_rules: Sequence[Rule]) -> FrozenSet[str]:
        return frozenset({self.new})


@dataclass(frozen=True)
class RenameConstant(Transformation):
    """Rename a constant throughout the rules (error category 1 — e.g.
    ``fishing`` -> ``trawlingArea``, the o1 error discussed in Section 5.2)."""

    old: str
    new: str

    def apply(self, rules: List[Rule], rng: random.Random) -> List[Rule]:
        def fn(term: Term) -> Term:
            if isinstance(term, Constant) and term.value == self.old:
                return Constant(self.new)
            return term

        return [_rewrite_rule(rule, fn) for rule in rules]

    def introduced_names(self, gold_rules: Sequence[Rule]) -> FrozenSet[str]:
        return frozenset({self.new})


@dataclass(frozen=True)
class RenameVariable(Transformation):
    """Rename a variable throughout the rules. Harmless by construction:
    the similarity metric assigns distance 0 to consistent renamings
    (Example 4.13, rules (1) vs (6))."""

    old: str
    new: str

    def apply(self, rules: List[Rule], rng: random.Random) -> List[Rule]:
        def fn(term: Term) -> Term:
            if isinstance(term, Variable) and term.name == self.old:
                return Variable(self.new)
            return term

        return [_rewrite_rule(rule, fn) for rule in rules]


@dataclass(frozen=True)
class SwapOperator(Transformation):
    """Replace one interval operator with another in holdsFor rules
    (error category 4 — ``union_all`` vs ``intersect_all``)."""

    old: str = "union_all"
    new: str = "intersect_all"
    rule_index: Optional[int] = None  # None: all rules

    def apply(self, rules: List[Rule], rng: random.Random) -> List[Rule]:
        def fn(term: Term) -> Term:
            if isinstance(term, Compound) and term.functor == self.old:
                return Compound(self.new, term.args)
            return term

        out = []
        for index, rule in enumerate(rules):
            if self.rule_index is None or index == self.rule_index:
                out.append(_rewrite_rule(rule, fn))
            else:
                out.append(rule)
        return out

    def introduced_names(self, gold_rules: Sequence[Rule]) -> FrozenSet[str]:
        return frozenset({self.new})


@dataclass(frozen=True)
class SwapArguments(Transformation):
    """Reverse the arguments of a binary predicate (cf. rule (7) of the
    paper: ``areaType(AreaType, AreaID)``)."""

    functor: str

    def apply(self, rules: List[Rule], rng: random.Random) -> List[Rule]:
        def fn(term: Term) -> Term:
            if isinstance(term, Compound) and term.functor == self.functor and term.arity == 2:
                return Compound(term.functor, (term.args[1], term.args[0]))
            return term

        return [_rewrite_rule(rule, fn) for rule in rules]

    def introduced_names(self, gold_rules: Sequence[Rule]) -> FrozenSet[str]:
        return frozenset({self.functor})


@dataclass(frozen=True)
class DropRule(Transformation):
    """Omit one rule (e.g. a forgotten gap-termination rule)."""

    index: int

    def apply(self, rules: List[Rule], rng: random.Random) -> List[Rule]:
        if not 0 <= self.index < len(rules):
            return list(rules)
        return [rule for i, rule in enumerate(rules) if i != self.index]

    def introduced_names(self, gold_rules: Sequence[Rule]) -> FrozenSet[str]:
        if not 0 <= self.index < len(gold_rules):
            return frozenset()
        return _term_names(gold_rules[self.index].head)


@dataclass(frozen=True)
class DropCondition(Transformation):
    """Omit one body condition of one rule."""

    rule_index: int
    condition_index: int

    def apply(self, rules: List[Rule], rng: random.Random) -> List[Rule]:
        out = list(rules)
        if not 0 <= self.rule_index < len(out):
            return out
        rule = out[self.rule_index]
        if not 0 <= self.condition_index < len(rule.body):
            return out
        body = tuple(
            lit for i, lit in enumerate(rule.body) if i != self.condition_index
        )
        out[self.rule_index] = Rule(rule.head, body)
        return out

    def introduced_names(self, gold_rules: Sequence[Rule]) -> FrozenSet[str]:
        if not 0 <= self.rule_index < len(gold_rules):
            return frozenset()
        rule = gold_rules[self.rule_index]
        if not 0 <= self.condition_index < len(rule.body):
            return frozenset()
        literal = rule.body[self.condition_index]
        names = set(_term_names(literal.term))

        def walk(node: Term) -> None:
            if isinstance(node, Compound):
                for arg in node.args:
                    walk(arg)
            elif isinstance(node, Variable):
                names.add(node.name)

        walk(literal.term)
        return frozenset(names)


@dataclass(frozen=True)
class AddCondition(Transformation):
    """Insert a condition into one rule.

    With a condition referencing an undefined activity this realises error
    category 3; with a defined but superfluous activity it realises the
    "one redundant condition" observed for trawling in Section 5.2.
    """

    rule_index: int
    condition: str  # concrete RTEC syntax, e.g. "holdsAt(underWay(Vessel)=true, T)"
    negated: bool = False
    position: Optional[int] = None  # None: append

    def apply(self, rules: List[Rule], rng: random.Random) -> List[Rule]:
        out = list(rules)
        if not 0 <= self.rule_index < len(out):
            return out
        rule = out[self.rule_index]
        literal = Literal(parse_term(self.condition), self.negated)
        body = list(rule.body)
        if self.position is None:
            body.append(literal)
        else:
            body.insert(self.position, literal)
        out[self.rule_index] = Rule(rule.head, tuple(body))
        return out

    def introduced_names(self, gold_rules: Sequence[Rule]) -> FrozenSet[str]:
        return _identifier_names(self.condition)


@dataclass(frozen=True)
class TruncateRules(Transformation):
    """Keep only the first ``count`` rules — a model that sketches the
    beginning of a definition and trails off (typical of zero-shot output)."""

    count: int = 1

    def apply(self, rules: List[Rule], rng: random.Random) -> List[Rule]:
        return list(rules[: max(0, self.count)])

    def introduced_names(self, gold_rules: Sequence[Rule]) -> FrozenSet[str]:
        names = set()
        for rule in gold_rules[max(0, self.count):]:
            names |= _term_names(rule.head)
        return frozenset(names)


@dataclass(frozen=True)
class CorruptSyntax(Transformation):
    """A *text-level* corruption (a genuine syntactic mistake): applied by
    the simulated model after rendering, not on the parsed rules. The
    pipeline will record a parse error for the affected activity.

    ``kind`` is one of ``"drop-final-period"`` and ``"unbalanced-paren"``.
    """

    kind: str = "drop-final-period"

    def apply(self, rules: List[Rule], rng: random.Random) -> List[Rule]:
        return list(rules)  # the corruption happens at text level

    def corrupt(self, text: str) -> str:
        if self.kind == "drop-final-period":
            index = text.rfind(".")
            if index >= 0:
                text = text[:index] + text[index + 1 :]
            return text
        if self.kind == "unbalanced-paren":
            index = text.rfind(")")
            if index >= 0:
                text = text[:index] + text[index + 1 :]
            return text
        raise ValueError("unknown corruption kind %r" % self.kind)


@dataclass(frozen=True)
class ReplaceRules(Transformation):
    """Replace the whole definition with alternative rules (error category
    2 — wrong fluent type, or a from-scratch re-formalisation)."""

    text: str

    def apply(self, rules: List[Rule], rng: random.Random) -> List[Rule]:
        return parse_program(self.text)

    def introduced_names(self, gold_rules: Sequence[Rule]) -> FrozenSet[str]:
        gold_names = set()
        for rule in gold_rules:
            gold_names |= _term_names(rule.head)
            for literal in rule.body:
                gold_names |= _term_names(literal.term)
        return frozenset(_identifier_names(self.text) - gold_names)


def apply_all(
    rules: Sequence[Rule],
    transformations: Sequence[Transformation],
    rng: random.Random,
) -> List[Rule]:
    """Apply the transformations left to right."""
    out = list(rules)
    for transformation in transformations:
        out = transformation.apply(out, rng)
    return out
