"""Error-injection transformations for simulated LLM generation.

The paper's qualitative error assessment (Section 5.2) groups the errors of
LLM-generated event descriptions into four categories:

1. minor naming divergences for events, activities and background
   knowledge (:class:`RenameFunctor`, :class:`RenameConstant`);
2. modelling an activity with the wrong fluent type, or otherwise
   re-formalising it from scratch (:class:`ReplaceRules`);
3. conditions referencing activities that are undefined in the generated
   event description (:class:`AddCondition` with an undefined fluent);
4. wrong operators between activities — most prominently confusing
   ``union_all`` with ``intersect_all`` (:class:`SwapOperator`).

Each transformation rewrites a parsed rule list; a simulated model's
profile is a per-activity composition of transformations applied to the
gold-standard rules — the simulated counterpart of a pre-trained model
reproducing a definition imperfectly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.logic.parser import Literal, Rule, parse_program, parse_term
from repro.logic.terms import Compound, Constant, Term, Variable

__all__ = [
    "Transformation",
    "RenameFunctor",
    "RenameConstant",
    "RenameVariable",
    "SwapOperator",
    "SwapArguments",
    "DropRule",
    "DropCondition",
    "AddCondition",
    "ReplaceRules",
    "apply_all",
]


def _rewrite(term: Term, fn) -> Term:
    """Bottom-up term rewriting: ``fn`` maps each node to a node."""
    if isinstance(term, Compound):
        rebuilt = Compound(term.functor, tuple(_rewrite(arg, fn) for arg in term.args))
        return fn(rebuilt)
    return fn(term)


def _rewrite_rule(rule: Rule, fn) -> Rule:
    head = _rewrite(rule.head, fn)
    body = tuple(Literal(_rewrite(lit.term, fn), lit.negated) for lit in rule.body)
    return Rule(head, body)


class Transformation:
    """Base class; subclasses override :meth:`apply`."""

    def apply(self, rules: List[Rule], rng: random.Random) -> List[Rule]:
        raise NotImplementedError


@dataclass(frozen=True)
class RenameFunctor(Transformation):
    """Rename a predicate/fluent/event functor throughout the rules
    (error category 1 — e.g. ``gap_start`` -> ``gapStart``)."""

    old: str
    new: str

    def apply(self, rules: List[Rule], rng: random.Random) -> List[Rule]:
        def fn(term: Term) -> Term:
            if isinstance(term, Compound) and term.functor == self.old:
                return Compound(self.new, term.args)
            return term

        return [_rewrite_rule(rule, fn) for rule in rules]


@dataclass(frozen=True)
class RenameConstant(Transformation):
    """Rename a constant throughout the rules (error category 1 — e.g.
    ``fishing`` -> ``trawlingArea``, the o1 error discussed in Section 5.2)."""

    old: str
    new: str

    def apply(self, rules: List[Rule], rng: random.Random) -> List[Rule]:
        def fn(term: Term) -> Term:
            if isinstance(term, Constant) and term.value == self.old:
                return Constant(self.new)
            return term

        return [_rewrite_rule(rule, fn) for rule in rules]


@dataclass(frozen=True)
class RenameVariable(Transformation):
    """Rename a variable throughout the rules. Harmless by construction:
    the similarity metric assigns distance 0 to consistent renamings
    (Example 4.13, rules (1) vs (6))."""

    old: str
    new: str

    def apply(self, rules: List[Rule], rng: random.Random) -> List[Rule]:
        def fn(term: Term) -> Term:
            if isinstance(term, Variable) and term.name == self.old:
                return Variable(self.new)
            return term

        return [_rewrite_rule(rule, fn) for rule in rules]


@dataclass(frozen=True)
class SwapOperator(Transformation):
    """Replace one interval operator with another in holdsFor rules
    (error category 4 — ``union_all`` vs ``intersect_all``)."""

    old: str = "union_all"
    new: str = "intersect_all"
    rule_index: Optional[int] = None  # None: all rules

    def apply(self, rules: List[Rule], rng: random.Random) -> List[Rule]:
        def fn(term: Term) -> Term:
            if isinstance(term, Compound) and term.functor == self.old:
                return Compound(self.new, term.args)
            return term

        out = []
        for index, rule in enumerate(rules):
            if self.rule_index is None or index == self.rule_index:
                out.append(_rewrite_rule(rule, fn))
            else:
                out.append(rule)
        return out


@dataclass(frozen=True)
class SwapArguments(Transformation):
    """Reverse the arguments of a binary predicate (cf. rule (7) of the
    paper: ``areaType(AreaType, AreaID)``)."""

    functor: str

    def apply(self, rules: List[Rule], rng: random.Random) -> List[Rule]:
        def fn(term: Term) -> Term:
            if isinstance(term, Compound) and term.functor == self.functor and term.arity == 2:
                return Compound(term.functor, (term.args[1], term.args[0]))
            return term

        return [_rewrite_rule(rule, fn) for rule in rules]


@dataclass(frozen=True)
class DropRule(Transformation):
    """Omit one rule (e.g. a forgotten gap-termination rule)."""

    index: int

    def apply(self, rules: List[Rule], rng: random.Random) -> List[Rule]:
        if not 0 <= self.index < len(rules):
            return list(rules)
        return [rule for i, rule in enumerate(rules) if i != self.index]


@dataclass(frozen=True)
class DropCondition(Transformation):
    """Omit one body condition of one rule."""

    rule_index: int
    condition_index: int

    def apply(self, rules: List[Rule], rng: random.Random) -> List[Rule]:
        out = list(rules)
        if not 0 <= self.rule_index < len(out):
            return out
        rule = out[self.rule_index]
        if not 0 <= self.condition_index < len(rule.body):
            return out
        body = tuple(
            lit for i, lit in enumerate(rule.body) if i != self.condition_index
        )
        out[self.rule_index] = Rule(rule.head, body)
        return out


@dataclass(frozen=True)
class AddCondition(Transformation):
    """Insert a condition into one rule.

    With a condition referencing an undefined activity this realises error
    category 3; with a defined but superfluous activity it realises the
    "one redundant condition" observed for trawling in Section 5.2.
    """

    rule_index: int
    condition: str  # concrete RTEC syntax, e.g. "holdsAt(underWay(Vessel)=true, T)"
    negated: bool = False
    position: Optional[int] = None  # None: append

    def apply(self, rules: List[Rule], rng: random.Random) -> List[Rule]:
        out = list(rules)
        if not 0 <= self.rule_index < len(out):
            return out
        rule = out[self.rule_index]
        literal = Literal(parse_term(self.condition), self.negated)
        body = list(rule.body)
        if self.position is None:
            body.append(literal)
        else:
            body.insert(self.position, literal)
        out[self.rule_index] = Rule(rule.head, tuple(body))
        return out


@dataclass(frozen=True)
class TruncateRules(Transformation):
    """Keep only the first ``count`` rules — a model that sketches the
    beginning of a definition and trails off (typical of zero-shot output)."""

    count: int = 1

    def apply(self, rules: List[Rule], rng: random.Random) -> List[Rule]:
        return list(rules[: max(0, self.count)])


@dataclass(frozen=True)
class CorruptSyntax(Transformation):
    """A *text-level* corruption (a genuine syntactic mistake): applied by
    the simulated model after rendering, not on the parsed rules. The
    pipeline will record a parse error for the affected activity.

    ``kind`` is one of ``"drop-final-period"`` and ``"unbalanced-paren"``.
    """

    kind: str = "drop-final-period"

    def apply(self, rules: List[Rule], rng: random.Random) -> List[Rule]:
        return list(rules)  # the corruption happens at text level

    def corrupt(self, text: str) -> str:
        if self.kind == "drop-final-period":
            index = text.rfind(".")
            if index >= 0:
                text = text[:index] + text[index + 1 :]
            return text
        if self.kind == "unbalanced-paren":
            index = text.rfind(")")
            if index >= 0:
                text = text[:index] + text[index + 1 :]
            return text
        raise ValueError("unknown corruption kind %r" % self.kind)


@dataclass(frozen=True)
class ReplaceRules(Transformation):
    """Replace the whole definition with alternative rules (error category
    2 — wrong fluent type, or a from-scratch re-formalisation)."""

    text: str

    def apply(self, rules: List[Rule], rng: random.Random) -> List[Rule]:
        return parse_program(self.text)


def apply_all(
    rules: Sequence[Rule],
    transformations: Sequence[Transformation],
    rng: random.Random,
) -> List[Rule]:
    """Apply the transformations left to right."""
    out = list(rules)
    for transformation in transformations:
        out = transformation.apply(out, rng)
    return out
