"""Simulated LLMs with calibrated error profiles.

No network access is available in this environment, so the six models of
the paper's evaluation (GPT-4, GPT-4o, o1, Llama-3, Mistral, Gemma-2) are
substituted by :class:`SimulatedLLM`: a chat backend that consumes the
*same prompt pipeline* (R, F/F*, E, T, G) as a real model and responds to
each generation request with an event description derived from its
internal "knowledge" of the domain (the gold-standard rules) distorted by
its error profile — the simulated counterpart of a pre-trained model
reproducing a formalisation imperfectly.

The simulation is honest about its interface: it learns the prompting
scheme from the F prompt it is shown (chain-of-thought prompts carry
worked "Answer:" explanations; few-shot prompts do not) and identifies the
requested activity purely from the natural-language description inside the
G prompt. It never inspects pipeline internals.

The domain is a parameter: ``knowledge`` is the list of activity groups
the model "has seen during pre-training" and ``profiles`` maps prompting
schemes to error profiles. The defaults reproduce the paper's maritime
evaluation; :mod:`repro.fleet` instantiates the same class for vehicle
fleet management (the paper's further-work domain).
"""

from __future__ import annotations

import random
import re
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.llm.errors import CorruptSyntax, Transformation, apply_all
from repro.llm.interface import ChatMessage
from repro.llm.profiles import MODEL_NAMES, Profile, profile_for
from repro.llm.prompts import CHAIN_OF_THOUGHT, FEW_SHOT, REPAIR_MARKER, ZERO_SHOT
from repro.logic.parser import parse_program
from repro.logic.pretty import program_to_str
from repro.maritime.gold import ACTIVITY_GROUPS, ActivityGroup

__all__ = ["SimulatedLLM"]

_GENERATION_MARKER = "Maritime Composite Activity Description - "
_GENERIC_MARKER = "Composite Activity Description - "
_COT_MARKER = "Answer: The activity 'withinArea' is expressed"
_F_MARKER = "There are two ways in which a composite activity may be defined"
_DIAGNOSTICS_HEADER = "Analyser diagnostics:"
_SYNTAX_HINTS = ("RTEC001", "syntax", "parse")


class SimulatedLLM:
    """A seeded, profile-driven stand-in for one of the paper's LLMs.

    Parameters
    ----------
    model:
        One of the paper's model names (``MODEL_NAMES``).
    seed:
        Seed for any stochastic transformation.
    knowledge:
        The activity groups the model can formalise (default: the maritime
        gold standard).
    profiles:
        ``{scheme: profile}`` overriding the built-in maritime profiles;
        each profile maps group names to transformation lists.
    """

    def __init__(
        self,
        model: str,
        seed: int = 0,
        knowledge: Sequence[ActivityGroup] = ACTIVITY_GROUPS,
        profiles: Optional[Dict[str, Profile]] = None,
    ) -> None:
        if model not in MODEL_NAMES:
            raise ValueError("unknown model %r; known: %s" % (model, MODEL_NAMES))
        self._model = model
        self._rng = random.Random((hash(model) & 0xFFFF) ^ seed)
        self._knowledge = list(knowledge)
        self._profiles = profiles
        # (scheme, activity name) -> transformations the model has "learned"
        # to avoid after being shown analyser diagnostics implicating them.
        self._repaired: Dict[Tuple[str, str], Set[Transformation]] = {}

    @property
    def model_name(self) -> str:
        return self._model

    def complete(self, conversation: Sequence[ChatMessage]) -> str:
        """Reply to the last user message of the conversation."""
        last_user = self._last_user_message(conversation)
        if REPAIR_MARKER in last_user.content:
            return self._repair_definition(conversation, last_user.content)
        if _GENERIC_MARKER in last_user.content:
            return self._generate_definition(conversation, last_user.content)
        return "Understood."

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _last_user_message(conversation: Sequence[ChatMessage]) -> ChatMessage:
        for message in reversed(conversation):
            if message.role == "user":
                return message
        raise ValueError("conversation contains no user message")

    @staticmethod
    def _detect_scheme(conversation: Sequence[ChatMessage]) -> str:
        """Infer the prompting scheme from the F prompt seen so far.

        Chain-of-thought F prompts carry worked "Answer:" explanations; a
        conversation with no F prompt at all is a zero-shot interaction.
        """
        saw_f_prompt = False
        for message in conversation:
            if message.role != "user":
                continue
            if _COT_MARKER in message.content:
                return CHAIN_OF_THOUGHT
            if _F_MARKER in message.content:
                saw_f_prompt = True
        return FEW_SHOT if saw_f_prompt else ZERO_SHOT

    def _match_activity(self, request: str) -> Optional[ActivityGroup]:
        """Identify the requested activity from its natural-language
        description inside the G prompt."""
        _prefix, _sep, description = request.partition(_GENERIC_MARKER)
        description = description.strip()
        for group in self._knowledge:
            if group.description.strip() == description:
                return group
        # Tolerate minor whitespace differences and prefix matches.
        for group in self._knowledge:
            head = group.description.split(":", 1)[0].strip().lower()
            if description.lower().startswith(head):
                return group
        return None

    def _profile(self, scheme: str) -> Profile:
        if self._profiles is not None:
            return self._profiles.get(scheme, {})
        return profile_for(self._model, scheme)

    def _active_transformations(
        self, scheme: str, group: ActivityGroup
    ) -> List[Transformation]:
        """The profile's transformations minus the ones repaired away."""
        transformations = self._profile(scheme).get(group.name, [])
        suppressed = self._repaired.get((scheme, group.name), set())
        return [t for t in transformations if t not in suppressed]

    def _render(self, group: ActivityGroup, transformations: Sequence[Transformation]) -> str:
        rule_level = [t for t in transformations if not isinstance(t, CorruptSyntax)]
        text_level = [t for t in transformations if isinstance(t, CorruptSyntax)]
        rules = parse_program(group.rules_text)
        rules = apply_all(rules, rule_level, self._rng)
        text = program_to_str(rules)
        for corruption in text_level:
            text = corruption.corrupt(text)
        return text

    def _generate_definition(
        self, conversation: Sequence[ChatMessage], request: str
    ) -> str:
        group = self._match_activity(request)
        if group is None:
            return "% I do not know how to formalise this activity."
        scheme = self._detect_scheme(conversation)
        return self._render(group, self._active_transformations(scheme, group))

    def _repair_definition(
        self, conversation: Sequence[ChatMessage], request: str
    ) -> str:
        """Respond to a repair prompt (see :func:`repro.llm.prompts.prompt_repair`).

        The model reads the quoted analyser diagnostics and drops every
        profile transformation *implicated* by them: a transformation is
        implicated when one of its :meth:`~repro.llm.errors.Transformation.introduced_names`
        occurs as a whole word in the diagnostics text (syntax corruptions
        are implicated by any syntax/parse-error diagnostic). Dropped
        transformations stay dropped for the rest of the conversation —
        the simulated counterpart of a model incorporating feedback — while
        unimplicated ones persist, so a repair round only fixes what the
        diagnostics actually describe.
        """
        group = self._match_activity(request)
        if group is None:
            return "% I do not know how to formalise this activity."
        scheme = self._detect_scheme(conversation)
        _prefix, _sep, diagnostics_text = request.partition(_DIAGNOSTICS_HEADER)
        gold_rules = parse_program(group.rules_text)
        active = self._active_transformations(scheme, group)
        suppressed = self._repaired.setdefault((scheme, group.name), set())
        for transformation in active:
            if isinstance(transformation, CorruptSyntax):
                if any(hint in diagnostics_text for hint in _SYNTAX_HINTS):
                    suppressed.add(transformation)
                continue
            names = transformation.introduced_names(gold_rules)
            if any(
                re.search(r"\b%s\b" % re.escape(name), diagnostics_text)
                for name in names
            ):
                suppressed.add(transformation)
        return self._render(group, self._active_transformations(scheme, group))
