"""Prompt builders for the pipeline of Figure 1 (Section 3).

The pipeline teaches the LLM the RTEC language (prompt R), the two kinds of
composite activity definition via few-shot or chain-of-thought examples
(prompts F*/F), the items of the input stream (prompt E), the domain
thresholds (prompt T), and finally asks for each composite activity
definition from its natural-language description (prompt G).
"""

from __future__ import annotations

from typing import Mapping

from repro.maritime.gold import (
    INPUT_EVENT_MEANINGS,
    INPUT_FLUENT_MEANINGS,
    THRESHOLD_MEANINGS,
)
from repro.maritime.thresholds import DEFAULT_THRESHOLDS, Thresholds

__all__ = [
    "FEW_SHOT",
    "CHAIN_OF_THOUGHT",
    "PROMPT_SCHEMES",
    "prompt_r",
    "prompt_f",
    "prompt_e",
    "prompt_t",
    "prompt_g",
    "prompt_repair",
    "REPAIR_MARKER",
]

FEW_SHOT = "few-shot"
CHAIN_OF_THOUGHT = "chain-of-thought"
#: Zero-shot prompting skips prompt F entirely. The paper evaluated it and
#: found it "produced poor results, and thus we do not include it in our
#: pipeline" — it is supported here so that claim can be reproduced.
ZERO_SHOT = "zero-shot"

#: The schemes of the paper's pipeline (Figure 1).
PROMPT_SCHEMES = (FEW_SHOT, CHAIN_OF_THOUGHT)

#: All supported schemes, including the excluded zero-shot baseline.
ALL_PROMPT_SCHEMES = (FEW_SHOT, CHAIN_OF_THOUGHT, ZERO_SHOT)

_WITHIN_AREA_RULE_1 = """initiatedAt(withinArea(Vessel, AreaType)=true, T) :-
    happensAt(entersArea(Vessel, Area), T),
    areaType(Area, AreaType)."""

_WITHIN_AREA_RULE_2 = """terminatedAt(withinArea(Vessel, AreaType)=true, T) :-
    happensAt(leavesArea(Vessel, Area), T),
    areaType(Area, AreaType)."""

_WITHIN_AREA_RULE_3 = """terminatedAt(withinArea(Vessel, AreaType)=true, T) :-
    happensAt(gap_start(Vessel), T)."""

_UNDER_WAY_RULE = """holdsFor(underWay(Vessel)=true, I) :-
    holdsFor(movingSpeed(Vessel)=below, I1),
    holdsFor(movingSpeed(Vessel)=normal, I2),
    holdsFor(movingSpeed(Vessel)=above, I3),
    union_all([I1, I2, I3], I)."""


def prompt_r() -> str:
    """Prompt R: the syntax of the RTEC language (Definitions 2.2 and 2.4)."""
    return (
        "You will write composite activity definitions in the language of "
        "RTEC, the Run-Time Event Calculus. RTEC uses a linear time-line "
        "with non-negative integer time-points. happensAt(E, T) signifies "
        "that event E occurs at time-point T. A fluent-value pair F=V "
        "denotes that fluent F has value V. initiatedAt(F=V, T) (resp. "
        "terminatedAt(F=V, T)) expresses that a period during which F=V "
        "holds continuously is initiated (terminated) at T. holdsAt(F=V, T) "
        "states that F has value V at T, while holdsFor(F=V, I) expresses "
        "that F=V holds continuously in the maximal intervals of list I.\n\n"
        "The body of an initiatedAt or terminatedAt rule starts with a "
        "positive happensAt predicate, followed by a possibly empty set of "
        "positive or negative happensAt and holdsAt predicates, atemporal "
        "background predicates, and comparisons; negation-by-failure is "
        "written with the prefix 'not'. All predicates are evaluated on the "
        "same time-point T.\n\n"
        "The body of a holdsFor rule contains holdsFor predicates over "
        "fluent-value pairs other than the one in the head, atemporal "
        "background predicates, and the interval manipulation constructs "
        "union_all(L, I), intersect_all(L, I) and "
        "relative_complement_all(I', L, I), where L is a list of interval "
        "lists computed earlier in the body. Rules end with a full stop."
    )


def prompt_f(scheme: str) -> str:
    """Prompt F (chain-of-thought) or F* (few-shot): simple vs statically
    determined fluents, with two worked example definitions."""
    if scheme not in PROMPT_SCHEMES:
        raise ValueError("unknown prompting scheme %r" % scheme)
    parts = [
        "There are two ways in which a composite activity may be defined in "
        "the language of RTEC. In the first case, a composite activity "
        "definition may be specified by means of rules with "
        "initiatedAt(F=V, T) or terminatedAt(F=V, T) in their head. This is "
        "called a simple fluent definition.",
        "",
        "Example 1: Given a composite maritime activity description, "
        "provide the rules in the language of RTEC. Composite Maritime "
        "Activity Description: 'withinArea'. This activity starts when a "
        "vessel enters an area of interest. The activity ends when the "
        "vessel leaves the area that it had entered. When there is a gap "
        "in signal transmissions, we can no longer assume that the vessel "
        "remains in the same area.",
        "",
    ]
    if scheme == CHAIN_OF_THOUGHT:
        parts += [
            "Answer: The activity 'withinArea' is expressed as a simple "
            "fluent. This activity starts when a vessel enters an area of "
            "interest. We use an 'initiatedAt' rule to express this "
            "initiation condition. The output is a boolean fluent named "
            "'withinArea' with two arguments, i.e. 'Vessel' and 'AreaType'.",
            "",
        ]
    parts += [_WITHIN_AREA_RULE_1, ""]
    if scheme == CHAIN_OF_THOUGHT:
        parts += [
            "The activity 'withinArea' ends when a vessel leaves the area "
            "that it had entered. We use a 'terminatedAt' rule to describe "
            "this termination condition.",
            "",
        ]
    parts += [_WITHIN_AREA_RULE_2, ""]
    if scheme == CHAIN_OF_THOUGHT:
        parts += [
            "The activity 'withinArea' ends when a communication gap "
            "starts. We use a 'terminatedAt' rule to express this "
            "termination condition.",
            "",
        ]
    parts += [
        _WITHIN_AREA_RULE_3,
        "",
        "A composite activity definition may also be specified by means of "
        "one rule with holdsFor(F=V, I) in its head. This is called a "
        "statically determined fluent definition.",
        "",
        "Example 2: Given a composite maritime activity description, "
        "provide the rules in the language of RTEC. Composite Maritime "
        "Activity Description: 'underWay'. This activity lasts as long as "
        "a vessel is not stopped.",
        "",
    ]
    if scheme == CHAIN_OF_THOUGHT:
        parts += [
            "Answer: The activity 'underWay' is expressed as a statically "
            "determined fluent. We express 'underWay' as the disjunction of "
            "the three values of 'movingSpeed', i.e. 'below', 'normal' and "
            "'above'. Disjunction in 'holdsFor' rules is expressed by means "
            "of 'union_all'.",
            "",
        ]
    parts += [_UNDER_WAY_RULE]
    return "\n".join(parts)


def prompt_e(
    event_meanings: Mapping[str, str] = None,
    fluent_meanings: Mapping[str, str] = None,
) -> str:
    """Prompt E: the input events and input fluents of the application."""
    event_meanings = INPUT_EVENT_MEANINGS if event_meanings is None else event_meanings
    fluent_meanings = INPUT_FLUENT_MEANINGS if fluent_meanings is None else fluent_meanings
    lines = ["You may use the following input events:", ""]
    for index, (signature, meaning) in enumerate(event_meanings.items(), start=1):
        lines.append("Input Event %d: %s" % (index, signature))
        lines.append("Meaning: %s" % meaning)
        lines.append("")
    lines.append("You may use the following input fluents:")
    lines.append("")
    for index, (signature, meaning) in enumerate(fluent_meanings.items(), start=1):
        lines.append("Input Fluent %d: %s" % (index, signature))
        lines.append("Meaning: %s" % meaning)
        lines.append("")
    return "\n".join(lines).rstrip()


_MARITIME_BACKGROUND_NOTE = (
    "You may also use the background predicates areaType(Area, AreaType), "
    "vesselType(Vessel, Type), vesselSpeedRange(Vessel, Min, Max), "
    "oneIsTug(Vessel1, Vessel2) and oneIsPilot(Vessel1, Vessel2)."
)


def prompt_t(
    thresholds: Thresholds = DEFAULT_THRESHOLDS,
    meanings: Mapping[str, str] = None,
    background_note: str = None,
) -> str:
    """Prompt T: the domain thresholds, via the ``thresholds/2`` predicate.

    ``thresholds`` may be any object with an ``items()`` iterator of
    ``(name, value)`` pairs; ``background_note`` describes the atemporal
    predicates of the domain (defaults to the maritime ones).
    """
    meanings = THRESHOLD_MEANINGS if meanings is None else meanings
    if background_note is None:
        background_note = _MARITIME_BACKGROUND_NOTE
    lines = [
        "You may use a predicate named 'thresholds' with two arguments. "
        "The first argument refers to the threshold type and the second "
        "one to the threshold value. Threshold values can be used to "
        "perform mathematical operations and comparisons. " + background_note,
        "",
    ]
    for index, (name, value) in enumerate(thresholds.items(), start=1):
        camel = name[0].upper() + name[1:]
        lines.append("Threshold %d: thresholds(%s, %s)" % (index, name, camel))
        meaning = meanings.get(name, "")
        if meaning:
            lines.append("Meaning: %s (default value %s)" % (meaning, value))
        lines.append("")
    return "\n".join(lines).rstrip()


def prompt_g(description: str, domain: str = "Maritime") -> str:
    """Prompt G: ask for one composite activity definition.

    ``domain`` labels the request ("Maritime" in the paper's evaluation;
    other domains reuse the same prompt, per Section 6).
    """
    return (
        "Given a composite %s activity description, provide the "
        "rules in RTEC formalization. You may use any of the "
        "aforementioned input events and fluents, and threshold values. "
        "You may use any of the output fluents that you have already "
        "learned.\n\n"
        "%s Composite Activity Description - %s"
        % (domain.lower(), domain, description)
    )


#: The sentence opening a repair prompt; clients (and the simulated model)
#: recognise a repair round by its presence in the last user message.
REPAIR_MARKER = "Repair request - "


def prompt_repair(
    description: str,
    current_text: str,
    diagnostics_text: str,
    domain: str = "Maritime",
) -> str:
    """The repair prompt: current definition plus analyser diagnostics.

    Built by the repair loop (:mod:`repro.analysis.repair`) for each
    activity whose diagnostics could not be fixed mechanically. The prompt
    restates the activity description in the same ``Composite Activity
    Description -`` framing as prompt G so the model knows which activity
    to re-derive, quotes the current (possibly auto-fixed) definition, and
    renders the unresolved diagnostics verbatim.
    """
    return (
        "%sThe definition you provided for the following composite "
        "activity was checked by a static analyser and problems remain. "
        "Provide corrected rules in RTEC formalization, fixing every "
        "reported problem while keeping the parts that are already "
        "correct.\n\n"
        "%s Composite Activity Description - %s\n\n"
        "Your current definition:\n\n%s\n\n"
        "Analyser diagnostics:\n\n%s"
        % (REPAIR_MARKER, domain, description, current_text, diagnostics_text)
    )
