"""Figure 2b: similarities after minimal syntactic correction.

The three event descriptions with the highest similarity (GPT-4o△, o1□ and
Llama-3□ in the paper) are corrected — automatic vocabulary matching plus
the reviewer-supplied ``trawlingArea`` -> ``fishing`` rename — turning them
into GPT-4o▲, o1■ and Llama-3■, and their similarities are re-measured.
The paper observes a small increase over Figure 2a, evidencing that the
required changes were minor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.fig2a import Fig2aResult, run_fig2a, scheme_mark
from repro.generation.correction import CorrectionReport
from repro.generation.generator import GenerationOutcome, correct_outcome
from repro.logic.knowledge import KnowledgeBase
from repro.maritime.gold import ACTIVITY_SHORT_LABELS, COMPOSITE_ACTIVITIES, MARITIME_VOCABULARY

__all__ = ["Fig2bResult", "run_fig2b", "format_table"]


@dataclass
class Fig2bResult:
    """Corrected outcomes (and correction reports) for the top models."""

    fig2a: Fig2aResult
    corrected: Dict[str, GenerationOutcome]
    reports: Dict[str, CorrectionReport]

    def series(self) -> Dict[str, List[float]]:
        data: Dict[str, List[float]] = {}
        for model, outcome in self.corrected.items():
            values = [outcome.activity_similarities[a] for a in COMPOSITE_ACTIVITIES]
            values.append(outcome.average_similarity)
            data[model] = values
        return data

    def improvement(self, model: str) -> float:
        """Average-similarity delta of correction for one model."""
        return (
            self.corrected[model].average_similarity
            - self.fig2a.outcomes[model].average_similarity
        )


def run_fig2b(
    kb: KnowledgeBase,
    fig2a: Optional[Fig2aResult] = None,
    top: int = 3,
    seed: int = 0,
) -> Fig2bResult:
    """Correct the ``top`` best event descriptions of Figure 2a.

    ``kb`` supplies the known constants the corrector may map to (area
    types, vessel types, threshold names).
    """
    if fig2a is None:
        fig2a = run_fig2a(seed=seed)
    corrected: Dict[str, GenerationOutcome] = {}
    reports: Dict[str, CorrectionReport] = {}
    for model in fig2a.top_models(top):
        outcome, report = correct_outcome(
            fig2a.outcomes[model], MARITIME_VOCABULARY, kb
        )
        corrected[model] = outcome
        reports[model] = report
    return Fig2bResult(fig2a=fig2a, corrected=corrected, reports=reports)


def format_table(result: Fig2bResult) -> str:
    """Render the bar groups of Figure 2b as a text table."""
    header_cells = [ACTIVITY_SHORT_LABELS[a] for a in COMPOSITE_ACTIVITIES] + ["all"]
    lines = ["%-22s" % "model" + "".join("%7s" % cell for cell in header_cells)]
    for model, values in result.series().items():
        outcome = result.corrected[model]
        label = "%s%s" % (model, scheme_mark(outcome.scheme, corrected=True))
        lines.append("%-22s" % label + "".join("%7.2f" % value for value in values))
    for model in result.corrected:
        lines.append(
            "%-22s average improvement: %+0.3f (%d renames)"
            % (model, result.improvement(model), result.reports[model].total_changes)
        )
    return "\n".join(lines)
