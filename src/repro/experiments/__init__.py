"""Experiment harnesses regenerating the paper's figures.

One module per artifact of the evaluation section:

* :mod:`repro.experiments.fig2a` — similarity of LLM-generated definitions
  (best prompting scheme per model);
* :mod:`repro.experiments.fig2b` — similarities after minimal syntactic
  correction of the three best event descriptions;
* :mod:`repro.experiments.fig2c` — predictive accuracy (F1) of the
  corrected event descriptions on the AIS stream;
* :mod:`repro.experiments.repair` — similarity convergence of the
  iterative diagnostic repair loop per model x scheme.

Each harness returns a structured result object and can render the same
rows/series the paper plots via ``format_table``.
"""

from repro.experiments.fig2a import Fig2aResult, run_fig2a
from repro.experiments.fig2b import Fig2bResult, run_fig2b
from repro.experiments.fig2c import Fig2cResult, run_fig2c
from repro.experiments.render import bar, grouped_bar_chart
from repro.experiments.repair import RepairExperimentResult, run_repair_experiment
from repro.experiments.robustness import RobustnessResult, run_robustness

__all__ = [
    "Fig2aResult",
    "run_fig2a",
    "Fig2bResult",
    "run_fig2b",
    "Fig2cResult",
    "run_fig2c",
    "bar",
    "grouped_bar_chart",
    "RepairExperimentResult",
    "run_repair_experiment",
    "RobustnessResult",
    "run_robustness",
]
