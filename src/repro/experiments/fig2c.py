"""Figure 2c: predictive accuracy of corrected event descriptions.

RTEC detects the composite maritime activities over the (synthetic) AIS
stream twice — once with the hand-crafted gold definitions and once with
each corrected LLM-generated event description — and the recognised
time-points are compared per activity: F1 against the gold detections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.fig2a import scheme_mark
from repro.experiments.fig2b import Fig2bResult, run_fig2b
from repro.generation.evaluation import ActivityScore, run_recognition, score_activities
from repro.maritime.dataset import MaritimeDataset, build_dataset
from repro.maritime.gold import (
    ACTIVITY_SHORT_LABELS,
    COMPOSITE_ACTIVITIES,
    gold_event_description,
)
from repro.rtec.result import RecognitionResult

__all__ = ["Fig2cResult", "run_fig2c", "format_table"]


@dataclass
class Fig2cResult:
    """Per-model, per-activity CER accuracy against the gold detections."""

    fig2b: Fig2bResult
    dataset: MaritimeDataset
    gold_result: RecognitionResult
    scores: Dict[str, Dict[str, ActivityScore]]

    def series(self) -> Dict[str, List[float]]:
        """Model -> the 8 f1-score bar heights of Figure 2c."""
        return {
            model: [activity_scores[a].f1 for a in COMPOSITE_ACTIVITIES]
            for model, activity_scores in self.scores.items()
        }

    def average_f1(self, model: str) -> float:
        values = [self.scores[model][a].f1 for a in COMPOSITE_ACTIVITIES]
        return sum(values) / len(values)


def run_fig2c(
    fig2b: Optional[Fig2bResult] = None,
    dataset: Optional[MaritimeDataset] = None,
    seed: int = 0,
    scale: float = 0.5,
    window: Optional[int] = None,
) -> Fig2cResult:
    """Run the CER accuracy experiment.

    ``scale`` controls the synthetic dataset size (1.0 is roughly six
    hours of traffic); ``window`` optionally enables sliding-window
    recognition for both the gold and the generated descriptions.
    """
    if dataset is None:
        dataset = build_dataset(seed=seed, scale=scale)
    if fig2b is None:
        fig2b = run_fig2b(dataset.kb, seed=seed)
    gold_result = run_recognition(gold_event_description(), dataset, window=window, strict=True)
    scores: Dict[str, Dict[str, ActivityScore]] = {}
    for model, outcome in fig2b.corrected.items():
        candidate_result = run_recognition(
            outcome.generated.to_event_description(), dataset, window=window
        )
        scores[model] = score_activities(gold_result, candidate_result)
    return Fig2cResult(
        fig2b=fig2b, dataset=dataset, gold_result=gold_result, scores=scores
    )


def format_table(result: Fig2cResult) -> str:
    """Render the f1-score bar groups of Figure 2c as a text table."""
    header_cells = [ACTIVITY_SHORT_LABELS[a] for a in COMPOSITE_ACTIVITIES] + ["avg"]
    lines = ["%-22s" % "model" + "".join("%7s" % cell for cell in header_cells)]
    for model, values in result.series().items():
        outcome = result.fig2b.corrected[model]
        label = "%s%s" % (model, scheme_mark(outcome.scheme, corrected=True))
        row = values + [result.average_f1(model)]
        lines.append("%-22s" % label + "".join("%7.2f" % value for value in row))
    return "\n".join(lines)
