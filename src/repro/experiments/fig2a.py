"""Figure 2a: similarity values of LLM-generated definitions.

For each model, both prompting schemes are run and the event description
with the higher average similarity is kept (the paper's X-square /
X-triangle selection); the figure reports per-activity similarities for
the eight composite maritime activities plus the average over all activity
definitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.generation.generator import GenerationOutcome, generate_best
from repro.llm.profiles import MODEL_NAMES
from repro.llm.prompts import CHAIN_OF_THOUGHT
from repro.maritime.gold import ACTIVITY_SHORT_LABELS, COMPOSITE_ACTIVITIES

__all__ = ["Fig2aResult", "run_fig2a", "format_table", "scheme_mark"]


def scheme_mark(scheme: str, corrected: bool = False) -> str:
    """The paper's marker: square = few-shot, triangle = chain-of-thought
    (filled after correction)."""
    if scheme == CHAIN_OF_THOUGHT:
        return "▲" if corrected else "△"  # ▲ / △
    return "■" if corrected else "□"  # ■ / □


@dataclass
class Fig2aResult:
    """Best generation outcome per model."""

    outcomes: Dict[str, GenerationOutcome]

    def series(self) -> Dict[str, List[float]]:
        """Model -> the 9 bar heights (8 activities + 'all')."""
        data: Dict[str, List[float]] = {}
        for model, outcome in self.outcomes.items():
            values = [outcome.activity_similarities[a] for a in COMPOSITE_ACTIVITIES]
            values.append(outcome.average_similarity)
            data[model] = values
        return data

    def top_models(self, count: int = 3) -> List[str]:
        """The models with the highest average similarity (Fig. 2b/2c input)."""
        ranked = sorted(
            self.outcomes,
            key=lambda model: self.outcomes[model].average_similarity,
            reverse=True,
        )
        return ranked[:count]


def run_fig2a(models: Sequence[str] = MODEL_NAMES, seed: int = 0) -> Fig2aResult:
    """Run both prompting schemes for every model and keep the best."""
    return Fig2aResult({model: generate_best(model, seed=seed) for model in models})


def format_table(result: Fig2aResult) -> str:
    """Render the bar groups of Figure 2a as a text table."""
    header_cells = [ACTIVITY_SHORT_LABELS[a] for a in COMPOSITE_ACTIVITIES] + ["all"]
    lines = ["%-22s" % "model" + "".join("%7s" % cell for cell in header_cells)]
    for model, values in result.series().items():
        outcome = result.outcomes[model]
        label = "%s%s" % (model, scheme_mark(outcome.scheme))
        lines.append("%-22s" % label + "".join("%7.2f" % value for value in values))
    return "\n".join(lines)
