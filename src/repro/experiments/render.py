"""Text rendering of the paper's figures.

The paper's Figure 2 is three panels of grouped bar charts; these helpers
render the same series as unicode bar charts in the terminal, so the
reproduction's output is visually comparable to the original (per-activity
bar groups, one bar per model).
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

__all__ = ["bar", "grouped_bar_chart"]

_BLOCKS = " ▏▎▍▌▋▊▉█"


def bar(value: float, width: int = 20, maximum: float = 1.0) -> str:
    """A horizontal bar of ``value``/``maximum`` rendered in ``width`` cells."""
    if maximum <= 0:
        raise ValueError("maximum must be positive")
    fraction = max(0.0, min(1.0, value / maximum))
    cells = fraction * width
    full = int(cells)
    remainder = cells - full
    partial_index = int(round(remainder * (len(_BLOCKS) - 1)))
    text = "█" * full
    if full < width and partial_index > 0:
        text += _BLOCKS[partial_index]
    return text.ljust(width)


def grouped_bar_chart(
    series: Mapping[str, Sequence[float]],
    group_labels: Sequence[str],
    width: int = 20,
    value_format: str = "%.2f",
) -> str:
    """Render one bar per (group, series) pair, grouped like Figure 2.

    ``series`` maps a series name (e.g. ``"o1□"``) to one value per group
    (e.g. per activity); ``group_labels`` names the groups.
    """
    for name, values in series.items():
        if len(values) != len(group_labels):
            raise ValueError(
                "series %r has %d values for %d groups"
                % (name, len(values), len(group_labels))
            )
    label_width = max(len(name) for name in series) if series else 0
    lines: List[str] = []
    for index, group in enumerate(group_labels):
        lines.append("%s" % group)
        for name, values in series.items():
            value = values[index]
            lines.append(
                "  %-*s %s %s"
                % (label_width, name, bar(value, width), value_format % value)
            )
    return "\n".join(lines)
