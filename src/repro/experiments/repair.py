"""Repair-loop convergence: similarity per iteration, per model x scheme.

A Figure 2b-style experiment for the iterative repair loop
(:mod:`repro.analysis.repair`): for every simulated model and prompting
scheme, generate an event description, take the single-shot corrected
similarity as the baseline (the paper's "minimum required changes" step),
then run correction *with* repair and record the similarity trajectory
across iterations. The loop must never end below the baseline — mechanical
fixes subsume the single-shot renames — and improves on it wherever
diagnostics can be fed back to the model.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.repair import RepairResult, generic_similarity
from repro.generation.correction import correct_event_description
from repro.generation.generator import generate
from repro.llm.profiles import MODEL_NAMES
from repro.llm.prompts import PROMPT_SCHEMES
from repro.llm.simulated import SimulatedLLM
from repro.logic.knowledge import KnowledgeBase
from repro.maritime.gold import MARITIME_VOCABULARY

__all__ = [
    "RepairEntry",
    "RepairExperimentResult",
    "run_repair_experiment",
    "run_fleet_repair_experiment",
    "format_table",
]


@dataclass
class RepairEntry:
    """The repair outcome of one model under one prompting scheme."""

    model: str
    scheme: str
    baseline: float  # single-shot corrected similarity
    result: RepairResult

    @property
    def trajectory(self) -> List[float]:
        """Similarity before repair, then after each iteration."""
        return [self.result.initial_similarity] + [
            iteration.similarity for iteration in self.result.iterations
        ]

    @property
    def improvement(self) -> float:
        return self.result.final_similarity - self.baseline

    def to_dict(self) -> Dict[str, Any]:
        return {
            "model": self.model,
            "scheme": self.scheme,
            "baseline": self.baseline,
            "trajectory": self.trajectory,
            "improvement": self.improvement,
            "repair": self.result.to_dict(),
        }


@dataclass
class RepairExperimentResult:
    """All entries of one experiment run."""

    entries: List[RepairEntry] = field(default_factory=list)

    def entry(self, model: str, scheme: str) -> RepairEntry:
        for candidate in self.entries:
            if candidate.model == model and candidate.scheme == scheme:
                return candidate
        raise KeyError("no entry for %s/%s" % (model, scheme))

    @property
    def all_at_least_baseline(self) -> bool:
        return all(entry.improvement >= -1e-9 for entry in self.entries)

    @property
    def strictly_improved(self) -> List[Tuple[str, str]]:
        return [
            (entry.model, entry.scheme)
            for entry in self.entries
            if entry.improvement > 1e-9
        ]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "entries": [entry.to_dict() for entry in self.entries],
            "all_at_least_baseline": self.all_at_least_baseline,
            "strictly_improved": [list(pair) for pair in self.strictly_improved],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def run_repair_experiment(
    kb: KnowledgeBase,
    models: Sequence[str] = MODEL_NAMES,
    schemes: Sequence[str] = PROMPT_SCHEMES,
    seed: int = 0,
    budget: int = 5,
) -> RepairExperimentResult:
    """Run the repair loop for every model x scheme over the maritime domain.

    ``kb`` supplies the known constants for the naming fixes (as in
    Figure 2b). Each combination gets a *fresh* simulated client for the
    repair conversation, so repaired behaviour does not leak between runs.
    """
    result = RepairExperimentResult()
    for model in models:
        for scheme in schemes:
            outcome = generate(model, scheme, seed=seed)
            baseline_corrected, _report = correct_event_description(
                outcome.generated, MARITIME_VOCABULARY, kb
            )
            baseline = generic_similarity(baseline_corrected)
            client = SimulatedLLM(model, seed=seed)
            _repaired, report = correct_event_description(
                outcome.generated,
                MARITIME_VOCABULARY,
                kb,
                repair=True,
                client=client,
                repair_budget=budget,
            )
            result.entries.append(
                RepairEntry(
                    model=model, scheme=scheme, baseline=baseline, result=report.repair
                )
            )
    return result


def run_fleet_repair_experiment(
    models: Sequence[str] = MODEL_NAMES,
    schemes: Sequence[str] = PROMPT_SCHEMES,
    seed: int = 0,
    budget: int = 5,
) -> RepairExperimentResult:
    """The same experiment over the fleet domain (Section 6 transfer)."""
    from repro.fleet.dataset import build_fleet_knowledge_base
    from repro.fleet.generation import (
        FLEET_PROFILES,
        fleet_domain_spec,
        generate_fleet,
    )
    from repro.fleet.gold import FLEET_ACTIVITY_GROUPS, FLEET_VOCABULARY

    kb = build_fleet_knowledge_base()
    domain = fleet_domain_spec()
    result = RepairExperimentResult()
    for model in models:
        for scheme in schemes:
            generated = generate_fleet(model, scheme, seed=seed)
            baseline_corrected, _report = correct_event_description(
                generated, FLEET_VOCABULARY, kb
            )
            baseline = generic_similarity(baseline_corrected)
            client = SimulatedLLM(
                model,
                seed=seed,
                knowledge=FLEET_ACTIVITY_GROUPS,
                profiles=FLEET_PROFILES.get(model, {}),
            )
            _repaired, report = correct_event_description(
                generated,
                FLEET_VOCABULARY,
                kb,
                repair=True,
                client=client,
                repair_budget=budget,
                domain=domain,
            )
            result.entries.append(
                RepairEntry(
                    model=model, scheme=scheme, baseline=baseline, result=report.repair
                )
            )
    return result


def format_table(result: RepairExperimentResult) -> str:
    """Similarity-convergence table: one row per model x scheme."""
    lines = [
        "%-10s %-17s %-16s %6s %9s %8s %8s  %s"
        % ("model", "scheme", "status", "iters", "baseline", "final", "delta", "trajectory")
    ]
    for entry in result.entries:
        repair = entry.result
        lines.append(
            "%-10s %-17s %-16s %6d %9.3f %8.3f %+8.3f  %s"
            % (
                entry.model,
                entry.scheme,
                repair.status,
                len(repair.iterations),
                entry.baseline,
                repair.final_similarity,
                entry.improvement,
                " -> ".join("%.3f" % value for value in entry.trajectory),
            )
        )
    improved = result.strictly_improved
    lines.append(
        "all >= single-shot baseline: %s; strictly improved: %d (%s)"
        % (
            "yes" if result.all_at_least_baseline else "NO",
            len(improved),
            ", ".join("%s/%s" % pair for pair in improved) or "none",
        )
    )
    return "\n".join(lines)
