"""Robustness of the Figure 2c result across dataset seeds.

The paper runs once on the fixed Brest dataset; this reproduction's stream
is synthetic, so we check that the accuracy conclusions (o1 wins; the
union/intersect confusion zeroes loitering for GPT-4o and Llama-3) are not
artefacts of one particular seed: the experiment is repeated over several
seeded fleets and per-activity F1 is aggregated as mean +/- standard
deviation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.experiments.fig2b import run_fig2b
from repro.experiments.fig2c import run_fig2c
from repro.maritime.dataset import build_dataset
from repro.maritime.gold import ACTIVITY_SHORT_LABELS, COMPOSITE_ACTIVITIES

__all__ = ["RobustnessResult", "run_robustness", "format_table"]


@dataclass
class RobustnessResult:
    """Per-model, per-activity F1 across seeds."""

    seeds: List[int]
    #: model -> activity -> list of F1 values, one per seed.
    samples: Dict[str, Dict[str, List[float]]]

    def mean(self, model: str, activity: str) -> float:
        values = self.samples[model][activity]
        return sum(values) / len(values)

    def std(self, model: str, activity: str) -> float:
        values = self.samples[model][activity]
        mu = self.mean(model, activity)
        return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))

    def average_f1(self, model: str) -> float:
        return sum(self.mean(model, a) for a in COMPOSITE_ACTIVITIES) / len(
            COMPOSITE_ACTIVITIES
        )


def run_robustness(
    seeds: Sequence[int] = (0, 1, 2),
    scale: float = 0.25,
) -> RobustnessResult:
    """Repeat the Figure 2c experiment over several dataset seeds.

    The generation seed is fixed (the simulated models are deterministic
    given their profiles); what varies is the synthetic fleet the
    definitions are evaluated on.
    """
    samples: Dict[str, Dict[str, List[float]]] = {}
    for seed in seeds:
        dataset = build_dataset(seed=seed, scale=scale)
        fig2b = run_fig2b(dataset.kb, seed=0)
        fig2c = run_fig2c(fig2b=fig2b, dataset=dataset)
        for model, scores in fig2c.scores.items():
            per_model = samples.setdefault(model, {})
            for activity in COMPOSITE_ACTIVITIES:
                per_model.setdefault(activity, []).append(scores[activity].f1)
    return RobustnessResult(seeds=list(seeds), samples=samples)


def format_table(result: RobustnessResult) -> str:
    header = ["%-10s" % "model"] + [
        "%12s" % ACTIVITY_SHORT_LABELS[a] for a in COMPOSITE_ACTIVITIES
    ]
    lines = ["".join(header) + "%12s" % "avg"]
    for model in result.samples:
        cells = ["%-10s" % model]
        for activity in COMPOSITE_ACTIVITIES:
            cells.append(
                "%12s"
                % ("%.2f±%.2f" % (result.mean(model, activity), result.std(model, activity)))
            )
        cells.append("%12.2f" % result.average_f1(model))
        lines.append("".join(cells))
    return "\n".join(lines)
