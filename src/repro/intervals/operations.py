"""The RTEC interval manipulation constructs (Definition 2.4).

``union_all``, ``intersect_all`` and ``relative_complement_all`` operate on
lists of maximal-interval lists and always return a normalised
:class:`~repro.intervals.interval.IntervalList`. All three run in
``O(total number of intervals × log)`` via sweep over sorted endpoints.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.intervals.interval import Interval, IntervalList

__all__ = ["union_all", "intersect_all", "relative_complement_all", "complement_within"]


def union_all(interval_lists: Sequence[IntervalList]) -> IntervalList:
    """Maximal intervals during which *at least one* of the inputs holds.

    ``union_all([]) == IntervalList.empty()``.
    """
    non_empty = [il for il in interval_lists if il]
    if not non_empty:
        return IntervalList.empty()
    if len(non_empty) == 1:
        return non_empty[0]
    combined: List[Interval] = []
    for interval_list in non_empty:
        combined.extend(interval_list.raw())
    return IntervalList(combined)


def intersect_all(interval_lists: Sequence[IntervalList]) -> IntervalList:
    """Maximal intervals during which *all* of the inputs hold simultaneously.

    The intersection of zero lists is undefined in RTEC; we raise to surface
    malformed generated rules instead of silently returning everything.
    """
    lists = list(interval_lists)
    if not lists:
        raise ValueError("intersect_all requires at least one interval list")
    result = lists[0]
    for other in lists[1:]:
        result = _intersect_two(result, other)
        if not result:
            break
    return result


def _intersect_two(left: IntervalList, right: IntervalList) -> IntervalList:
    left_items = left.raw()
    right_items = right.raw()
    if not left_items or not right_items:
        return IntervalList.empty()
    out: List[Interval] = []
    i = j = 0
    while i < len(left_items) and j < len(right_items):
        a, b = left_items[i], right_items[j]
        start = max(a.start, b.start)
        end = min(a.end, b.end)
        if start <= end:
            out.append(Interval(start, end))
        if a.end < b.end:
            i += 1
        else:
            j += 1
    return IntervalList(out)


def relative_complement_all(
    base: IntervalList, interval_lists: Sequence[IntervalList]
) -> IntervalList:
    """Maximal sub-intervals of ``base`` during which *none* of the inputs hold.

    This is RTEC's ``relative_complement_all(I', L, I)``: the part of ``I'``
    not covered by the union of the lists in ``L``.
    """
    if not base:
        return base
    covered = union_all(interval_lists)
    if not covered:
        return base
    out: List[Interval] = []
    cov = covered.raw()
    n = len(cov)
    j = 0  # persistent: both sides are sorted, so never rescan consumed cover
    for interval in base.raw():
        cursor = interval.start
        while j < n and cov[j].end < cursor:
            j += 1
        k = j
        while k < n and cov[k].start <= interval.end:
            c = cov[k]
            if c.start > cursor:
                out.append(Interval(cursor, c.start - 1))
            if c.end + 1 > cursor:
                cursor = c.end + 1
            if cursor > interval.end:
                break
            k += 1
        if cursor <= interval.end:
            out.append(Interval(cursor, interval.end))
    return IntervalList(out)


def complement_within(window: Tuple[int, int], interval_list: IntervalList) -> IntervalList:
    """Maximal intervals inside the closed window where ``interval_list`` does not hold."""
    start, end = window
    base = IntervalList.single(start, end)
    return relative_complement_all(base, [interval_list])
