"""The RTEC interval manipulation constructs (Definition 2.4).

``union_all``, ``intersect_all`` and ``relative_complement_all`` operate on
lists of maximal-interval lists and always return a normalised
:class:`~repro.intervals.interval.IntervalList`.

Each construct dispatches on the active kernel backend
(:mod:`repro.intervals.backend`): the pure-Python sweeps below run in
``O(total number of intervals × log)``, while the ``columnar`` backend
routes batch work to the numpy kernels in :mod:`repro.intervals.columnar`.
Small inputs stay on the pure path even under the columnar backend — numpy
call overhead dominates below a few dozen intervals — and both paths return
byte-identical results. Per-kernel telemetry counters
(``kernel.<op>.<backend>``) attribute work to the backend that ran it.

Ownership: the constructs may return one of their *input* ``IntervalList``
objects (``union_all`` with a single non-empty input, ``intersect_all``
with a single list, ``relative_complement_all`` with nothing covered).
``IntervalList`` enforces immutability (attribute assignment raises), so
sharing is safe; callers must not rely on result identity.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro import telemetry
from repro.intervals import backend as _backend
from repro.intervals.interval import Interval, IntervalList

__all__ = ["union_all", "intersect_all", "relative_complement_all", "complement_within"]

#: Below this many total input intervals the pure sweep wins: numpy call
#: overhead exceeds the loop cost. Measured crossover is ~30-60 on CPython.
_COLUMNAR_MIN_INTERVALS = 32

_columnar = None


def _kernels():
    global _columnar
    if _columnar is None:
        from repro.intervals import columnar

        _columnar = columnar
    return _columnar


def union_all(interval_lists: Sequence[IntervalList]) -> IntervalList:
    """Maximal intervals during which *at least one* of the inputs holds.

    ``union_all([]) == IntervalList.empty()``.
    """
    non_empty = [il for il in interval_lists if il]
    if not non_empty:
        return IntervalList.empty()
    if len(non_empty) == 1:
        # Returns the input object itself: safe because IntervalList is
        # immutable and already normalised (ownership regression tests in
        # tests/intervals/test_operations.py).
        return non_empty[0]
    if _backend.columnar_active():
        total = sum(len(il) for il in non_empty)
        if total >= _COLUMNAR_MIN_INTERVALS:
            try:
                result = _kernels().union_all_columnar(non_empty)
            except OverflowError:
                pass  # ints beyond int64: fall through to the pure sweep
            else:
                telemetry.count("kernel.union_all.columnar")
                return result
    telemetry.count("kernel.union_all.pure")
    combined: List[Interval] = []
    for interval_list in non_empty:
        combined.extend(interval_list.raw())
    return IntervalList(combined)


def intersect_all(interval_lists: Sequence[IntervalList]) -> IntervalList:
    """Maximal intervals during which *all* of the inputs hold simultaneously.

    The intersection of zero lists is undefined in RTEC; we raise to surface
    malformed generated rules instead of silently returning everything.
    """
    lists = list(interval_lists)
    if not lists:
        raise ValueError("intersect_all requires at least one interval list")
    # A single list is returned as-is (immutable, already normalised) —
    # same ownership contract as union_all.
    result = lists[0]
    for other in lists[1:]:
        result = _intersect_two(result, other)
        if not result:
            break
    return result


def _intersect_two(left: IntervalList, right: IntervalList) -> IntervalList:
    if _backend.columnar_active() and len(left) + len(right) >= _COLUMNAR_MIN_INTERVALS:
        try:
            result = _kernels().intersect_two_columnar(left, right)
        except OverflowError:
            pass
        else:
            telemetry.count("kernel.intersect.columnar")
            return result
    telemetry.count("kernel.intersect.pure")
    left_items = left.raw()
    right_items = right.raw()
    if not left_items or not right_items:
        return IntervalList.empty()
    out: List[Interval] = []
    i = j = 0
    while i < len(left_items) and j < len(right_items):
        a, b = left_items[i], right_items[j]
        start = max(a.start, b.start)
        end = min(a.end, b.end)
        if start <= end:
            out.append(Interval(start, end))
        if a.end < b.end:
            i += 1
        else:
            j += 1
    return IntervalList(out)


def relative_complement_all(
    base: IntervalList, interval_lists: Sequence[IntervalList]
) -> IntervalList:
    """Maximal sub-intervals of ``base`` during which *none* of the inputs hold.

    This is RTEC's ``relative_complement_all(I', L, I)``: the part of ``I'``
    not covered by the union of the lists in ``L``.
    """
    if not base:
        return base
    covered = union_all(interval_lists)
    if not covered:
        return base
    if _backend.columnar_active() and len(base) + len(covered) >= _COLUMNAR_MIN_INTERVALS:
        try:
            result = _kernels().relative_complement_columnar(base, covered)
        except OverflowError:
            pass
        else:
            telemetry.count("kernel.complement.columnar")
            return result
    telemetry.count("kernel.complement.pure")
    out: List[Interval] = []
    cov = covered.raw()
    n = len(cov)
    j = 0  # persistent: both sides are sorted, so never rescan consumed cover
    for interval in base.raw():
        cursor = interval.start
        while j < n and cov[j].end < cursor:
            j += 1
        k = j
        while k < n and cov[k].start <= interval.end:
            c = cov[k]
            if c.start > cursor:
                out.append(Interval(cursor, c.start - 1))
            if c.end + 1 > cursor:
                cursor = c.end + 1
            if cursor > interval.end:
                break
            k += 1
        if cursor <= interval.end:
            out.append(Interval(cursor, interval.end))
    return IntervalList(out)


def complement_within(window: Tuple[int, int], interval_list: IntervalList) -> IntervalList:
    """Maximal intervals inside the closed window where ``interval_list`` does not hold."""
    start, end = window
    base = IntervalList.single(start, end)
    return relative_complement_all(base, [interval_list])


def force_columnar_min(value: Optional[int]) -> int:
    """Set (or with ``None``, just read) the columnar dispatch threshold.

    Benchmarks and the equivalence test-suite lower this to 0 so that tiny
    randomised inputs still exercise the numpy kernels.
    """
    global _COLUMNAR_MIN_INTERVALS
    if value is not None:
        _COLUMNAR_MIN_INTERVALS = value
    return _COLUMNAR_MIN_INTERVALS
