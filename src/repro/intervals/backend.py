"""Kernel backend registry for the interval algebra and event scans.

Two backends implement the interval constructs of Definition 2.4 (and the
vectorised candidate filtering in :mod:`repro.rtec.simple`):

``pure``
    The original pure-Python sweeps over ``Interval`` objects. Always
    available; the default.

``columnar``
    Batch numpy kernels over the int64 ``(starts, ends)`` columns cached on
    each :class:`~repro.intervals.interval.IntervalList`
    (:mod:`repro.intervals.columnar`). Requires numpy; produces results
    byte-identical to ``pure``.

Selection, in increasing precedence:

1. the ``REPRO_KERNEL_BACKEND`` environment variable (read at import time;
   unknown names or ``columnar`` without numpy fall back to ``pure`` with a
   warning),
2. :func:`set_backend` / the :func:`use_backend` context manager (explicit
   selection *raises* on unknown or unavailable backends),
3. per-call ``backend=`` arguments on ``RTECEngine.recognise`` and
   ``RTECSession`` which wrap evaluation in :func:`use_backend`.

The active backend is a process-wide global (shared with worker threads);
process-pool shard workers resolve ``REPRO_KERNEL_BACKEND`` themselves at
import, so prefer the environment variable for process-sharded runs.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

__all__ = [
    "PURE",
    "COLUMNAR",
    "available_backends",
    "get_backend",
    "set_backend",
    "use_backend",
    "columnar_active",
]

PURE = "pure"
COLUMNAR = "columnar"
ENV_VAR = "REPRO_KERNEL_BACKEND"

_numpy_available: Optional[bool] = None


def _has_numpy() -> bool:
    global _numpy_available
    if _numpy_available is None:
        try:
            import numpy  # noqa: F401

            _numpy_available = True
        except ImportError:
            _numpy_available = False
    return _numpy_available


def available_backends() -> Tuple[str, ...]:
    """Backends usable in this process (``pure`` is always first)."""
    if _has_numpy():
        return (PURE, COLUMNAR)
    return (PURE,)


def set_backend(name: str) -> None:
    """Select the process-wide kernel backend; raises on bad names."""
    global _active, _columnar_active
    if name not in (PURE, COLUMNAR):
        raise ValueError(
            "unknown kernel backend %r (expected one of: pure, columnar)" % (name,)
        )
    if name == COLUMNAR and not _has_numpy():
        raise RuntimeError("columnar kernel backend requires numpy, which is not importable")
    _active = name
    _columnar_active = name == COLUMNAR


def get_backend() -> str:
    """Name of the active kernel backend."""
    return _active


def columnar_active() -> bool:
    """Fast check used by kernel dispatch sites."""
    return _columnar_active


@contextmanager
def use_backend(name: Optional[str]) -> Iterator[None]:
    """Temporarily switch the active backend; ``None`` is a no-op."""
    if name is None:
        yield
        return
    previous = _active
    set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)


def _from_environment() -> str:
    value = os.environ.get(ENV_VAR, "").strip().lower()
    if not value or value == PURE:
        return PURE
    if value == COLUMNAR:
        if _has_numpy():
            return COLUMNAR
        warnings.warn(
            "%s=columnar requested but numpy is not importable; "
            "falling back to the pure backend" % ENV_VAR,
            RuntimeWarning,
            stacklevel=2,
        )
        return PURE
    warnings.warn(
        "unknown %s=%r; falling back to the pure backend" % (ENV_VAR, value),
        RuntimeWarning,
        stacklevel=2,
    )
    return PURE


_active: str = _from_environment()
_columnar_active: bool = _active == COLUMNAR
