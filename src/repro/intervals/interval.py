"""Closed integer intervals and sorted lists of disjoint maximal intervals.

Conventions
-----------

The timeline is the non-negative integers (seconds in the maritime data).
An :class:`Interval` ``[start, end]`` is *closed* on both sides: the fluent
holds at every time-point ``t`` with ``start <= t <= end``.

Under RTEC semantics, a simple fluent initiated at ``Ts`` and next
terminated at ``Te > Ts`` holds over the paper's ``(Ts, Te]``, i.e. at
points ``Ts+1 … Te`` — constructed here as ``Interval(Ts + 1, Te)`` by
:func:`repro.intervals.pairing.make_intervals_from_points`.

An :class:`IntervalList` is an immutable, sorted sequence of disjoint,
non-adjacent intervals (adjacent intervals ``[a, b]``, ``[b+1, c]`` are
coalesced on normalisation), so each stored interval is maximal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple, Union

__all__ = ["Interval", "IntervalList"]


@dataclass(frozen=True, order=True)
class Interval:
    """A closed integer interval ``[start, end]`` with ``start <= end``."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("empty interval: [%r, %r]" % (self.start, self.end))

    def __contains__(self, point: int) -> bool:
        return self.start <= point <= self.end

    def __len__(self) -> int:
        return self.end - self.start + 1

    @property
    def duration(self) -> int:
        """Number of time-points covered."""
        return self.end - self.start + 1

    def overlaps(self, other: "Interval") -> bool:
        return self.start <= other.end and other.start <= self.end

    def adjacent(self, other: "Interval") -> bool:
        """True when the two intervals cover contiguous points with no gap."""
        return self.end + 1 == other.start or other.end + 1 == self.start

    def __repr__(self) -> str:
        return "(%d, %d]" % (self.start - 1, self.end)


class IntervalList:
    """An immutable sorted list of disjoint maximal intervals."""

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Iterable[Union[Interval, Tuple[int, int]]] = ()) -> None:
        items: List[Interval] = []
        for item in intervals:
            if isinstance(item, Interval):
                items.append(item)
            else:
                start, end = item
                items.append(Interval(int(start), int(end)))
        self._intervals: Tuple[Interval, ...] = self._normalise(items)

    @staticmethod
    def _normalise(items: List[Interval]) -> Tuple[Interval, ...]:
        if not items:
            return ()
        items = sorted(items)
        merged: List[Interval] = [items[0]]
        for current in items[1:]:
            last = merged[-1]
            if current.start <= last.end + 1:  # overlapping or adjacent
                if current.end > last.end:
                    merged[-1] = Interval(last.start, current.end)
            else:
                merged.append(current)
        return tuple(merged)

    @classmethod
    def empty(cls) -> "IntervalList":
        return _EMPTY

    @classmethod
    def single(cls, start: int, end: int) -> "IntervalList":
        return cls([(start, end)])

    def raw(self) -> Tuple[Interval, ...]:
        """The underlying sorted tuple — lets operations iterate without copying."""
        return self._intervals

    # -- queries -----------------------------------------------------------

    def holds_at(self, point: int) -> bool:
        """Binary-search point membership."""
        lo, hi = 0, len(self._intervals) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            interval = self._intervals[mid]
            if point < interval.start:
                hi = mid - 1
            elif point > interval.end:
                lo = mid + 1
            else:
                return True
        return False

    @property
    def total_duration(self) -> int:
        """Total number of time-points covered by all intervals."""
        return sum(iv.duration for iv in self._intervals)

    @property
    def span(self) -> Tuple[int, int]:
        """(first covered point, last covered point); raises on empty lists."""
        if not self._intervals:
            raise ValueError("empty interval list has no span")
        return self._intervals[0].start, self._intervals[-1].end

    def points(self) -> Iterator[int]:
        """Yield every covered time-point in increasing order."""
        for interval in self._intervals:
            yield from range(interval.start, interval.end + 1)

    def restrict(self, start: int, end: int) -> "IntervalList":
        """Clip to the closed window ``[start, end]`` (used by the sliding window)."""
        clipped = []
        for iv in self._intervals:
            if iv.end < start or iv.start > end:
                continue
            clipped.append(Interval(max(iv.start, start), min(iv.end, end)))
        return IntervalList(clipped)

    # -- container protocol --------------------------------------------------

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def __len__(self) -> int:
        return len(self._intervals)

    def __getitem__(self, index: int) -> Interval:
        return self._intervals[index]

    def __bool__(self) -> bool:
        return bool(self._intervals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalList):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(self._intervals)

    def __repr__(self) -> str:
        return "IntervalList(%s)" % ", ".join(repr(iv) for iv in self._intervals)

    def as_pairs(self) -> List[Tuple[int, int]]:
        """Return the intervals as ``(start, end)`` tuples (closed bounds)."""
        return [(iv.start, iv.end) for iv in self._intervals]


_EMPTY = IntervalList()
