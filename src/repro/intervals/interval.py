"""Closed integer intervals and sorted lists of disjoint maximal intervals.

Conventions
-----------

The timeline is the non-negative integers (seconds in the maritime data).
An :class:`Interval` ``[start, end]`` is *closed* on both sides: the fluent
holds at every time-point ``t`` with ``start <= t <= end``.

Under RTEC semantics, a simple fluent initiated at ``Ts`` and next
terminated at ``Te > Ts`` holds over the paper's ``(Ts, Te]``, i.e. at
points ``Ts+1 … Te`` — constructed here as ``Interval(Ts + 1, Te)`` by
:func:`repro.intervals.pairing.make_intervals_from_points`.

An :class:`IntervalList` is an immutable, sorted sequence of disjoint,
non-adjacent intervals (adjacent intervals ``[a, b]``, ``[b+1, c]`` are
coalesced on normalisation), so each stored interval is maximal.

Representations
---------------

An :class:`IntervalList` holds one or both of two interchangeable
representations of the same normalised sequence:

* a tuple of :class:`Interval` objects (the historical form), and
* a columnar pair of int64 numpy arrays ``(starts, ends)`` used by the
  vectorised kernels in :mod:`repro.intervals.columnar`.

Either form is materialised lazily from the other on first use and cached;
the numpy arrays are only ever built when numpy is importable (lists
constructed from ``Interval`` objects never touch numpy unless a columnar
kernel asks for :meth:`IntervalList.columns`).

Immutability is *enforced*: attribute assignment on an ``IntervalList``
raises ``AttributeError``. This is what makes it safe for the interval
operations (``union_all`` with a single non-empty input, ``intersect_all``
with a single list) to return an input object instead of a copy — see
``tests/intervals/test_operations.py`` for the ownership regression tests.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, List, Tuple, Union

__all__ = ["Interval", "IntervalList"]


@dataclass(frozen=True, order=True)
class Interval:
    """A closed integer interval ``[start, end]`` with ``start <= end``."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("empty interval: [%r, %r]" % (self.start, self.end))

    def __contains__(self, point: int) -> bool:
        return self.start <= point <= self.end

    def __len__(self) -> int:
        return self.end - self.start + 1

    @property
    def duration(self) -> int:
        """Number of time-points covered."""
        return self.end - self.start + 1

    def overlaps(self, other: "Interval") -> bool:
        return self.start <= other.end and other.start <= self.end

    def adjacent(self, other: "Interval") -> bool:
        """True when the two intervals cover contiguous points with no gap."""
        return self.end + 1 == other.start or other.end + 1 == self.start

    def __repr__(self) -> str:
        return "(%d, %d]" % (self.start - 1, self.end)


class IntervalList:
    """An immutable sorted list of disjoint maximal intervals."""

    __slots__ = ("_intervals", "_starts", "_ends")

    def __init__(self, intervals: Iterable[Union[Interval, Tuple[int, int]]] = ()) -> None:
        items: List[Interval] = []
        for item in intervals:
            if isinstance(item, Interval):
                items.append(item)
            else:
                start, end = item
                items.append(Interval(int(start), int(end)))
        object.__setattr__(self, "_intervals", self._normalise(items))
        object.__setattr__(self, "_starts", None)
        object.__setattr__(self, "_ends", None)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(
            "IntervalList is immutable; build a new list instead of assigning %r" % name
        )

    def __delattr__(self, name: str) -> None:
        raise AttributeError("IntervalList is immutable; cannot delete %r" % name)

    @staticmethod
    def _normalise(items: List[Interval]) -> Tuple[Interval, ...]:
        if not items:
            return ()
        items = sorted(items)
        merged: List[Interval] = [items[0]]
        for current in items[1:]:
            last = merged[-1]
            if current.start <= last.end + 1:  # overlapping or adjacent
                if current.end > last.end:
                    merged[-1] = Interval(last.start, current.end)
            else:
                merged.append(current)
        return tuple(merged)

    @classmethod
    def empty(cls) -> "IntervalList":
        return _EMPTY

    @classmethod
    def single(cls, start: int, end: int) -> "IntervalList":
        return cls([(start, end)])

    @classmethod
    def from_arrays(cls, starts: Any, ends: Any) -> "IntervalList":
        """Adopt already-normalised int64 columnar arrays without copying.

        The arrays must describe a sorted sequence of disjoint, non-adjacent
        intervals with ``starts[i] <= ends[i]`` — exactly what the columnar
        kernels produce. The caller gives up ownership: the arrays must not
        be mutated afterwards. ``Interval`` objects are materialised lazily.
        """
        if len(starts) == 0:
            return _EMPTY
        instance = object.__new__(cls)
        object.__setattr__(instance, "_intervals", None)
        object.__setattr__(instance, "_starts", starts)
        object.__setattr__(instance, "_ends", ends)
        return instance

    def raw(self) -> Tuple[Interval, ...]:
        """The underlying sorted tuple — lets operations iterate without copying."""
        intervals = self._intervals
        if intervals is None:
            intervals = tuple(
                Interval(s, e)
                for s, e in zip(self._starts.tolist(), self._ends.tolist())
            )
            object.__setattr__(self, "_intervals", intervals)
        return intervals

    def columns(self) -> Tuple[Any, Any]:
        """The ``(starts, ends)`` int64 arrays — built lazily, cached, shared.

        Requires numpy; only the columnar kernels call this. The returned
        arrays are owned by the list and must not be mutated.
        """
        starts = self._starts
        if starts is None:
            import numpy

            items = self._intervals
            count = len(items)
            starts = numpy.fromiter((iv.start for iv in items), dtype=numpy.int64, count=count)
            ends = numpy.fromiter((iv.end for iv in items), dtype=numpy.int64, count=count)
            object.__setattr__(self, "_starts", starts)
            object.__setattr__(self, "_ends", ends)
        return self._starts, self._ends

    # -- queries -----------------------------------------------------------

    def holds_at(self, point: int) -> bool:
        """Binary-search point membership."""
        intervals = self._intervals
        if intervals is None:
            ends = self._ends
            index = bisect_left(ends, point)
            return index < len(ends) and bool(self._starts[index] <= point)
        lo, hi = 0, len(intervals) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            interval = intervals[mid]
            if point < interval.start:
                hi = mid - 1
            elif point > interval.end:
                lo = mid + 1
            else:
                return True
        return False

    @property
    def total_duration(self) -> int:
        """Total number of time-points covered by all intervals."""
        if self._intervals is None:
            return int((self._ends - self._starts).sum()) + len(self._ends)
        return sum(iv.duration for iv in self._intervals)

    @property
    def span(self) -> Tuple[int, int]:
        """(first covered point, last covered point); raises on empty lists."""
        if self._intervals is None:
            return int(self._starts[0]), int(self._ends[-1])
        if not self._intervals:
            raise ValueError("empty interval list has no span")
        return self._intervals[0].start, self._intervals[-1].end

    def points(self) -> Iterator[int]:
        """Yield every covered time-point in increasing order."""
        for interval in self.raw():
            yield from range(interval.start, interval.end + 1)

    def restrict(self, start: int, end: int) -> "IntervalList":
        """Clip to the closed window ``[start, end]`` (used by the sliding window)."""
        if self._intervals is None:
            starts, ends = self._starts, self._ends
            lo = bisect_left(ends, start)
            hi = bisect_left(starts, end + 1, lo)
            if lo >= hi:
                return _EMPTY
            out_starts = starts[lo:hi].copy()
            out_ends = ends[lo:hi].copy()
            # Intervals are sorted and disjoint, so only the boundary ones
            # can stick out of the window.
            if out_starts[0] < start:
                out_starts[0] = start
            if out_ends[-1] > end:
                out_ends[-1] = end
            if out_starts[0] > out_ends[0] or out_starts[-1] > out_ends[-1]:
                raise ValueError(
                    "empty interval: [%r, %r]" % (int(out_starts[0]), int(out_ends[0]))
                )
            return IntervalList.from_arrays(out_starts, out_ends)
        clipped = []
        for iv in self._intervals:
            if iv.end < start or iv.start > end:
                continue
            clipped.append(Interval(max(iv.start, start), min(iv.end, end)))
        return IntervalList(clipped)

    # -- container protocol --------------------------------------------------

    def __iter__(self) -> Iterator[Interval]:
        return iter(self.raw())

    def __len__(self) -> int:
        if self._intervals is None:
            return len(self._starts)
        return len(self._intervals)

    def __getitem__(self, index: int) -> Interval:
        return self.raw()[index]

    def __bool__(self) -> bool:
        return len(self) != 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalList):
            return NotImplemented
        mine, theirs = self._intervals, other._intervals
        if mine is not None and theirs is not None:
            return mine == theirs
        if len(self) != len(other):
            return False
        return self.as_pairs() == other.as_pairs()

    def __hash__(self) -> int:
        # hash((s, e)) == hash(Interval(s, e)) for the frozen dataclass, so
        # this matches the historical hash over the Interval tuple without
        # forcing lazy lists to materialise Interval objects.
        return hash(tuple((s, e) for s, e in self.as_pairs()))

    def __repr__(self) -> str:
        return "IntervalList(%s)" % ", ".join(repr(iv) for iv in self.raw())

    def as_pairs(self) -> List[Tuple[int, int]]:
        """Return the intervals as ``(start, end)`` tuples (closed bounds)."""
        if self._intervals is None:
            return list(zip(self._starts.tolist(), self._ends.tolist()))
        return [(iv.start, iv.end) for iv in self._intervals]


_EMPTY = IntervalList()
