"""Vectorised numpy kernels for the interval constructs of Definition 2.4.

Each kernel consumes the cached int64 ``(starts, ends)`` columns of its
input :class:`~repro.intervals.interval.IntervalList` objects and returns a
new list built with :meth:`IntervalList.from_arrays` — i.e. the outputs stay
columnar and never materialise ``Interval`` objects unless a caller later
iterates them.

Correctness notes (each kernel's output is already normalised — sorted,
disjoint, non-adjacent — so ``from_arrays`` can adopt it directly):

* **union** — endpoint sweep: concatenate all columns, stable-argsort by
  start, take the running maximum of ends; a new maximal interval begins
  exactly where ``start[i] > running_max_end[i-1] + 1`` (the ``+ 1``
  coalesces adjacent intervals, matching ``IntervalList._normalise``).
* **intersection** — ``searchsorted`` pair clipping: for each interval of
  ``a``, the overlapping run of ``b`` is ``[lo, hi)`` with
  ``lo = searchsorted(b_ends, a_start)`` and
  ``hi = searchsorted(b_starts, a_end, side="right")``; every pair clips to
  ``[max(starts), min(ends)]``. Pairs are enumerated with the standard
  ``repeat``/``cumsum`` trick. Since both inputs are normalised, consecutive
  output intervals are separated by a gap of at least one point in one of
  the inputs, so the output needs no re-normalisation.
* **relative complement** — the gaps of the covering union (including the
  flanks out to the base span) form a normalised list; intersecting them
  with the base gives the complement.

These kernels are only reached through the dispatchers in
:mod:`repro.intervals.operations` when the ``columnar`` backend is active.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.intervals.interval import IntervalList

__all__ = ["union_all_columnar", "intersect_two_columnar", "relative_complement_columnar"]


def union_all_columnar(interval_lists: Sequence[IntervalList]) -> IntervalList:
    """Union of two or more non-empty interval lists."""
    columns = [il.columns() for il in interval_lists]
    starts = np.concatenate([c[0] for c in columns])
    ends = np.concatenate([c[1] for c in columns])
    order = np.argsort(starts, kind="stable")
    starts = starts[order]
    ends = ends[order]
    running_end = np.maximum.accumulate(ends)
    breaks = np.empty(len(starts), dtype=bool)
    breaks[0] = True
    np.greater(starts[1:], running_end[:-1] + 1, out=breaks[1:])
    first = np.flatnonzero(breaks)
    last = np.empty(len(first), dtype=np.int64)
    last[:-1] = first[1:] - 1
    last[-1] = len(starts) - 1
    return IntervalList.from_arrays(starts[first], running_end[last])


def intersect_two_columnar(a: IntervalList, b: IntervalList) -> IntervalList:
    """Pairwise intersection of two interval lists."""
    if not a or not b:
        return IntervalList.empty()
    a_starts, a_ends = a.columns()
    b_starts, b_ends = b.columns()
    lo = np.searchsorted(b_ends, a_starts, side="left")
    hi = np.searchsorted(b_starts, a_ends, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        return IntervalList.empty()
    a_index = np.repeat(np.arange(len(a_starts)), counts)
    run_offsets = np.cumsum(counts) - counts
    b_index = np.arange(total) - np.repeat(run_offsets - lo, counts)
    out_starts = np.maximum(a_starts[a_index], b_starts[b_index])
    out_ends = np.minimum(a_ends[a_index], b_ends[b_index])
    return IntervalList.from_arrays(out_starts, out_ends)


def relative_complement_columnar(base: IntervalList, covered: IntervalList) -> IntervalList:
    """Sub-intervals of non-empty ``base`` not covered by normalised ``covered``."""
    if not covered:
        return base
    base_starts, base_ends = base.columns()
    cov_starts, cov_ends = covered.columns()
    span_lo = base_starts[0]
    span_hi = base_ends[-1]
    gap_starts = np.concatenate(([span_lo], cov_ends + 1))
    gap_ends = np.concatenate((cov_starts - 1, [span_hi]))
    keep = gap_starts <= gap_ends
    if not keep.any():
        return IntervalList.empty()
    gaps = IntervalList.from_arrays(gap_starts[keep], gap_ends[keep])
    return intersect_two_columnar(base, gaps)
