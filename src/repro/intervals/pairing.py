"""Pairing initiation and termination points into maximal intervals.

Section 2 of the paper: for a simple FVP, RTEC "computes the maximal
intervals of F=V by matching each initiation Ts with the first termination
Te of F=V after Ts, ignoring every intermediate initiation between Ts and
Te". An initiation with no later termination holds until the current query
time (the window end) and remains *open*: the engine carries the open
period's initiation point into the next window, which is how inertia
survives the forgetting of old events.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.intervals.interval import Interval, IntervalList

__all__ = ["make_intervals_from_points", "pair_intervals"]


def pair_intervals(
    initiations: Iterable[int],
    terminations: Iterable[int],
    open_end: Optional[int] = None,
    max_duration: Optional[int] = None,
    closed_until: Optional[int] = None,
) -> Tuple[IntervalList, Optional[int], Optional[int]]:
    """Build the maximal intervals of a simple FVP, reporting openness.

    Parameters
    ----------
    initiations:
        Time-points at which an ``initiatedAt`` rule fired.
    terminations:
        Time-points at which a ``terminatedAt`` rule fired.
    open_end:
        Query time ``qi``: an initiation with no subsequent termination
        yields an interval open until ``open_end``. When ``None``, such
        trailing initiations produce no visible interval yet.
    max_duration:
        RTEC deadline support (``maxDuration/2`` declarations): a period
        initiated at ``Ts`` is terminated at ``Ts + max_duration`` unless an
        explicit termination arrives earlier. Intermediate initiations do
        not reset the deadline; the first initiation *after* the deadline
        starts a fresh period.
    closed_until:
        Initiations at or before this point are ignored: a previous window
        already closed a period covering them, so they are intermediate
        initiations of a final period whose anchoring initiation event has
        since been forgotten. Without the barrier they would re-anchor a
        phantom period with a later ``max_duration`` deadline.

    Returns
    -------
    (intervals, open_start, deadline_close):
        The maximal intervals under the ``(Ts, Te]`` semantics; the
        initiation point of the period that is still open at the query time
        (``None`` when every period is closed); and the *latest* end of any
        period closed by its ``max_duration`` deadline (``None`` when no
        period was). A closed period's endpoint is fixed: forgetting its
        termination event later cannot re-open it. Deadline closes leave no
        termination event behind, so the caller must carry
        ``deadline_close`` as the next window's ``closed_until`` barrier;
        explicit closes need no barrier because re-pairing the retained
        events reproduces the same endpoint from any anchor.

        One barrier suffices for a window with *several* deadline-closed
        periods: periods are paired in initiation order, every later period
        anchors strictly after the previous close, so deadline closes are
        non-decreasing along the loop and the latest one covers — i.e. is
        ``>=`` — every earlier close. The max is taken explicitly below so
        the guarantee does not hinge on that ordering argument alone
        (``tests/intervals/test_pairing.py`` exercises the multi-deadline
        and crash/restore cases).
    """
    if max_duration is not None and max_duration <= 0:
        raise ValueError("max_duration must be positive")
    init_points = sorted(set(initiations))
    term_points = sorted(set(terminations))
    if open_end is not None:
        # open_end is the query time: later points are not yet known.
        init_points = [p for p in init_points if p <= open_end]
        term_points = [p for p in term_points if p <= open_end]
    if closed_until is not None:
        init_points = [p for p in init_points if p > closed_until]
    intervals: List[Interval] = []
    open_start: Optional[int] = None
    deadline_close: Optional[int] = None
    ti = 0
    i = 0
    n_terms = len(term_points)
    while i < len(init_points):
        ts = init_points[i]
        # First termination at T'' with Ts <= T'' ends the period; a
        # termination at exactly Ts cancels the initiation (no point holds).
        while ti < n_terms and term_points[ti] < ts:
            ti += 1
        te = term_points[ti] if ti < n_terms else None
        if te == ts:
            # Simultaneous initiation+termination: the FVP never holds.
            i += 1
            continue
        deadline = ts + max_duration if max_duration is not None else None
        if te is not None and (deadline is None or te <= deadline):
            end: Optional[int] = te  # closed by an explicit termination
        elif deadline is not None and (open_end is None or deadline <= open_end):
            end = deadline  # closed by the deadline within this window
            # Keep the *maximal* close: the barrier carried to the next
            # window must cover every deadline-closed period of this one.
            if deadline_close is None or deadline > deadline_close:
                deadline_close = deadline
        elif deadline is not None:
            # The deadline lies beyond the query time: visible part only,
            # and the period is still open.
            end = open_end
            open_start = ts
        else:
            # No termination and no deadline: open until the query time.
            open_start = ts
            if open_end is not None and open_end > ts:
                intervals.append(Interval(ts + 1, open_end))
            break
        if end is not None and end > ts:
            intervals.append(Interval(ts + 1, end))
        # Skip intermediate initiations inside (ts, end].
        i += 1
        if end is not None:
            while i < len(init_points) and init_points[i] <= end:
                i += 1
    return IntervalList(intervals), open_start, deadline_close


def make_intervals_from_points(
    initiations: Iterable[int],
    terminations: Iterable[int],
    open_end: Optional[int] = None,
    max_duration: Optional[int] = None,
) -> IntervalList:
    """The maximal intervals of a simple FVP (see :func:`pair_intervals`)."""
    intervals, _open_start, _deadline_close = pair_intervals(
        initiations, terminations, open_end=open_end, max_duration=max_duration
    )
    return intervals
