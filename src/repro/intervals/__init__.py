"""Maximal-interval algebra over an integer timeline.

RTEC represents the periods during which a fluent-value pair holds as a
list of *maximal intervals*. This package provides the interval list type
(:class:`repro.intervals.IntervalList`) and the three interval manipulation
constructs of the RTEC language: :func:`union_all`, :func:`intersect_all`
and :func:`relative_complement_all` (Definition 2.4 of the paper).
"""

from repro.intervals.backend import (
    available_backends,
    get_backend,
    set_backend,
    use_backend,
)
from repro.intervals.interval import Interval, IntervalList
from repro.intervals.operations import (
    intersect_all,
    relative_complement_all,
    union_all,
)
from repro.intervals.pairing import make_intervals_from_points

__all__ = [
    "Interval",
    "IntervalList",
    "union_all",
    "intersect_all",
    "relative_complement_all",
    "make_intervals_from_points",
    "available_backends",
    "get_backend",
    "set_backend",
    "use_backend",
]
