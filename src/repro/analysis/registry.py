"""The registry of coded lint rules.

Each :class:`LintRule` documents one diagnostic code: its category name,
default severity, a short title, an explanation, whether its diagnostics
can carry an auto-fix, and — where applicable — the paper's error category
from Section 5.2 ("Qualitative Error Assessment") it detects:

1. naming divergence,
2. wrong fluent type,
3. undefined activity,
4. wrong interval operator.

Category 2 surfaces structurally (a fluent defined with the wrong rule
shape violates Definition 2.2/2.4 — RTEC002) and category 4 through its
downstream effects (arity misuse — RTEC009); a semantically *valid* swap
of ``union_all`` for ``intersect_all`` is undetectable statically and is
measured by Figure 2c instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.diagnostics import CATEGORY_CODES, Severity

__all__ = ["LintRule", "LINT_RULES", "DOCS_URI", "rule_for"]

#: Base URI of the lint-rule documentation (the DESIGN.md catalogue); each
#: rule's :attr:`LintRule.help_uri` anchors into it by lowercased code.
DOCS_URI = "https://github.com/aartikis/RTEC/blob/master/DESIGN.md"


#: Codes the repair loop does *not* feed back to the model: informational
#: lints that describe a property of the description rather than a defect.
_NOT_REPAIRABLE = frozenset({"RTEC015", "RTEC029", "RTEC030"})


@dataclass(frozen=True)
class LintRule:
    """Documentation record of one lint code."""

    code: str
    category: str
    severity: Severity
    title: str
    explanation: str
    paper_category: Optional[int] = None
    fixable: bool = False
    repair: Optional[str] = None
    """How the repair loop handles this code: ``"auto"`` (a structured fix
    is applied mechanically), ``"prompt"`` (rendered into a repair prompt
    for the model), or ``None`` (not repairable)."""

    @property
    def help_uri(self) -> str:
        """Documentation URI of this rule (SARIF ``helpUri``)."""
        return "%s#%s" % (DOCS_URI, self.code.lower())


def _rule(code: str, title: str, explanation: str, paper_category: Optional[int] = None,
          fixable: bool = False) -> LintRule:
    category = next(c for c, (cd, _s) in CATEGORY_CODES.items() if cd == code)
    severity = CATEGORY_CODES[category][1]
    if fixable:
        repair: Optional[str] = "auto"
    elif code in _NOT_REPAIRABLE:
        repair = None
    else:
        repair = "prompt"
    return LintRule(code, category, severity, title, explanation, paper_category,
                    fixable, repair)


LINT_RULES: Dict[str, LintRule] = {
    rule.code: rule
    for rule in (
        _rule(
            "RTEC001",
            "syntax error",
            "The text is not in the supported RTEC dialect and failed to parse.",
        ),
        _rule(
            "RTEC002",
            "malformed rule",
            "A rule violates Definition 2.2 or 2.4: wrong head predicate, "
            "empty body, wrong first condition, negation or comparisons in a "
            "holdsFor body, interval variables used before being bound, or a "
            "malformed declaration.",
            paper_category=2,
        ),
        _rule(
            "RTEC003",
            "undefined event",
            "A happensAt condition refers to an event that is not in the "
            "input vocabulary.",
            paper_category=3,
        ),
        _rule(
            "RTEC004",
            "undefined fluent",
            "A holdsAt/holdsFor condition refers to a fluent that is neither "
            "an input fluent nor defined by the event description (the "
            "paper's undefined-activity errors).",
            paper_category=3,
        ),
        _rule(
            "RTEC005",
            "undefined background predicate",
            "An atemporal condition has no matching background predicate in "
            "the vocabulary.",
            paper_category=3,
        ),
        _rule(
            "RTEC006",
            "cyclic fluent dependency",
            "The fluent dependency graph contains a cycle (reported with the "
            "full path); RTEC requires a hierarchy for bottom-up evaluation.",
        ),
        _rule(
            "RTEC007",
            "unbound or unevaluable operand",
            "Left-to-right binding-order dataflow: a variable reaches an "
            "arithmetic comparison, a holdsAt time-point, a negated holdsAt, "
            "or an interval builtin without having been bound by an earlier "
            "condition — this raises an EvaluationError at run time.",
        ),
        _rule(
            "RTEC008",
            "unsafe head variable",
            "A head variable is never bound by any body condition: "
            "initiations and head time-points must be ground after body "
            "evaluation (universal terminatedAt heads are exempt).",
        ),
        _rule(
            "RTEC009",
            "wrong arity",
            "A reserved predicate (happensAt, holdsFor, union_all, ...) or "
            "an arithmetic functor is used with the wrong number of "
            "arguments.",
            paper_category=4,
        ),
        _rule(
            "RTEC010",
            "initiated but never terminated",
            "A single-valued simple fluent has initiatedAt rules but no "
            "terminatedAt rule and no maxDuration deadline: once initiated "
            "it holds forever by inertia.",
        ),
        _rule(
            "RTEC011",
            "terminated but never initiated",
            "A simple fluent has terminatedAt rules but no initiatedAt rule "
            "and no initially declaration: its terminations can never fire.",
        ),
        _rule(
            "RTEC012",
            "dead rule",
            "A defined fluent is consumed by no other rule and is not a "
            "declared output of the recognition task.",
        ),
        _rule(
            "RTEC013",
            "duplicate rule",
            "Two rules are identical up to consistent variable renaming.",
        ),
        _rule(
            "RTEC014",
            "contradictory rules",
            "The same conditions (up to variable renaming) both initiate and "
            "terminate the same fluent-value pair.",
        ),
        _rule(
            "RTEC015",
            "not entity-shardable",
            "The partitionability analysis found a rule that blocks "
            "entity-sharded parallel recognition (informational).",
        ),
        _rule(
            "RTEC016",
            "naming divergence",
            "An unknown name normalises to (or is within a small edit "
            "distance of) exactly one known vocabulary name; the attached "
            "fix renames it.",
            paper_category=1,
            fixable=True,
        ),
        _rule(
            "RTEC017",
            "argument sort clash",
            "Sort inference (a union-find lattice over argument positions, "
            "seeded by the constants observed in rules, background facts "
            "and fluent values) places numeric and symbolic constants in "
            "the same position — e.g. a numeric literal where every other "
            "rule and fact uses an area-type atom.",
            paper_category=2,
        ),
        _rule(
            "RTEC018",
            "impossible fluent value",
            "A holdsAt/holdsFor condition references F=V where V is not "
            "among the values any rule or declaration of the defined "
            "fluent F can produce: the condition can never succeed (or, "
            "negated, always succeeds).",
            paper_category=2,
        ),
        _rule(
            "RTEC019",
            "contradictory conditions",
            "Value-domain analysis proves a rule's comparison conjunction "
            "unsatisfiable (e.g. Speed >= Min together with Speed < Min): "
            "the rule can never fire.",
            paper_category=2,
            fixable=True,
        ),
        _rule(
            "RTEC020",
            "statically decided comparison",
            "A comparison contains no variables, or compares a term with "
            "itself, and therefore always evaluates to the same truth value "
            "(an always-false comparison makes the rule dead; an always-true "
            "one is a no-op).",
            paper_category=2,
        ),
        _rule(
            "RTEC021",
            "subsumed condition",
            "A comparison is implied by another condition of the same rule "
            "(a duplicate, a weaker operator over the same operands, or a "
            "wider bound on the same variable); the attached fix drops it.",
            fixable=True,
        ),
        _rule(
            "RTEC022",
            "unreachable fluent",
            "Reachability analysis over the dependency graph finds no "
            "derivation path from any input event or input fluent to this "
            "defined fluent: at run time it can never hold.",
            paper_category=3,
        ),
        _rule(
            "RTEC023",
            "unreachable output",
            "A declared output fluent of the recognition task has no "
            "derivation path from any input: the task silently produces "
            "empty detections for it.",
            paper_category=3,
        ),
        _rule(
            "RTEC024",
            "dead termination",
            "A terminatedAt rule targets a fluent value that no "
            "initiatedAt rule or initially declaration can produce: the "
            "termination points are discarded unpaired; the attached fix "
            "removes the rule.",
            fixable=True,
        ),
        _rule(
            "RTEC025",
            "delta-unsafe temporal condition",
            "The delta-safety prover could not anchor a temporal condition "
            "(happensAt/holdsAt) to the rule's firing time: under "
            "incremental window evaluation the condition can reach back "
            "before the previous query time, where events are no longer in "
            "the delta stream. Anchor the condition's time to the head time "
            "(reuse the variable or add an =:= equality); until then "
            "sessions fall back to full-window recomputation.",
        ),
        _rule(
            "RTEC026",
            "delta-unsafe head anchoring",
            "The rule's head time is not provably equal to the time of its "
            "seeding happensAt condition (or the rule does not compile to a "
            "seeded plan at all), so the delta-safety prover cannot bound "
            "which window advances may fire it.",
        ),
        _rule(
            "RTEC027",
            "leaky fluent",
            "Memory-boundedness analysis found a reachable initiated value "
            "of a simple fluent with no live termination mechanism: no "
            "reachable terminatedAt rule matches it, no maxDuration "
            "deadline covers it, and no other reachable value of the same "
            "fluent can displace it. Once initiated it holds (and is "
            "carried across windows) forever.",
        ),
        _rule(
            "RTEC028",
            "leaky interval flow",
            "Abstract interpretation over the interval operators shows a "
            "statically determined fluent derives its intervals from a "
            "leaky fluent (union_all propagates any leaky input, "
            "intersect_all only all-leaky inputs, relative_complement_all "
            "its first operand): its cached state inherits the unbounded "
            "growth.",
        ),
        _rule(
            "RTEC029",
            "costly rule",
            "The static cost model estimates an unusually high evaluation "
            "cost for this rule (large join fan-out over enumerating "
            "conditions, or window-sensitive cost because a temporal "
            "condition scans the whole window). Informational: the weight "
            "feeds session placement and the optimiser.",
        ),
        _rule(
            "RTEC030",
            "uncertifiable description",
            "Certification could not analyse the description as a whole "
            "(base analysis errors such as syntax/cycles, or malformed "
            "rules), so no delta-safety, memory-boundedness or cost "
            "guarantees are attached. Fix the underlying error diagnostics "
            "first.",
        ),
    )
}

# Every category of the shared table must be documented here, and vice versa.
assert set(LINT_RULES) == {code for code, _ in CATEGORY_CODES.values()}


def rule_for(code: str) -> Optional[LintRule]:
    """The registry record of a lint code, if documented."""
    return LINT_RULES.get(code)
