"""Semantic abstract interpretation over parsed event descriptions.

Three cooperating analyses run over an :class:`EventDescription` (the
paper's Section 5.2 shows LLM-generated definitions fail *semantically* —
wrong thresholds, contradictory conditions, activities that can never
hold — in ways the syntactic passes RTEC001–016 cannot see):

1. **Sort inference** (RTEC017): a union-find lattice over predicate
   argument positions, seeded by the constants observed in rules,
   background facts and ``initially`` declarations. Two positions join
   when one rule uses the same variable in both. A class whose observed
   constants mix numbers and symbolic atoms is a sort clash.

2. **Value-domain analysis** (RTEC018–RTEC021): finite-set abstraction of
   the values each defined fluent can produce (ground rule-head values
   plus ``initially`` declarations), and a relation-set/interval
   abstraction of arithmetic comparisons. Each comparison operator
   denotes a subset of ``{<, =, >}``; negation complements the set; a
   conjunction of comparisons over the same operands is contradictory
   when the intersection is empty and subsumed when one set contains
   another. Variable bounds (closed interval hulls, optionally seeded
   from background facts) catch contradictions across different
   constants.

3. **Reachability/liveness** (RTEC022–RTEC024): a monotone fixpoint over
   the fluent dependency graph computing which fluent-value pairs have
   any derivation path from the input events and input fluents, plus the
   ``terminatedAt`` rules whose target value no initiation can produce.

The same facts feed :mod:`repro.analysis.optimize`, which rewrites rules
(fold, drop, reorder) without changing recognised intervals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, Fix
from repro.analysis.passes import AnalysisContext
from repro.logic.knowledge import KnowledgeBase
from repro.logic.parser import LIST_FUNCTOR, Literal, Rule
from repro.logic.pretty import literal_to_str, term_to_str
from repro.logic.terms import Compound, Constant, Term, Variable, is_fvp, is_ground, term_variables
from repro.logic.unification import Substitution
from repro.rtec.builtins import EVALUABLE_FUNCTORS, evaluate_arithmetic, evaluate_comparison, is_comparison
from repro.rtec.description import (
    INTERVAL_CONSTRUCTS,
    EventDescription,
    FluentKey,
    Vocabulary,
    fluent_key,
    head_fvp,
)
from repro.rtec.errors import EvaluationError

__all__ = [
    "SemanticFacts",
    "RuleFacts",
    "SortClass",
    "analyse_semantics",
    "compute_reachability",
    "comparison_facts",
    "background_bounds",
    "producible_values",
    "semantic_pass",
]

#: Functors whose body literals reference the stream/fluent store rather
#: than background knowledge.
STREAM_FUNCTORS = frozenset({"happensAt", "holdsAt", "holdsFor"})

#: Each comparison operator denotes the set of order relations it accepts.
_REL_SETS: Dict[str, FrozenSet[str]] = {
    "<": frozenset({"<"}),
    ">": frozenset({">"}),
    "=<": frozenset({"<", "="}),
    ">=": frozenset({">", "="}),
    "=:=": frozenset({"="}),
    "=\\=": frozenset({"<", ">"}),
}
_ALL_RELS: FrozenSet[str] = frozenset({"<", "=", ">"})
_FLIP = {"<": ">", ">": "<", "=": "="}

#: Upper bound on background-fact enumerations per literal when deriving
#: variable bounds; beyond it a variable is treated as unbounded.
_KB_SCAN_CAP = 4096

_INF = float("inf")
_EMPTY_SUBST = Substitution()


# ---------------------------------------------------------------------------
# Shared small helpers


def _relation_set(op: str, negated: bool) -> Optional[FrozenSet[str]]:
    rels = _REL_SETS.get(op)
    if rels is None:
        return None
    return (_ALL_RELS - rels) if negated else rels


def _flip_rels(rels: FrozenSet[str]) -> FrozenSet[str]:
    return frozenset(_FLIP[r] for r in rels)


def _orient(left: Term, right: Term, rels: FrozenSet[str]) -> Tuple[Term, Term, FrozenSet[str]]:
    """Deterministically orient a comparison so ``a op b`` and ``b op' a``
    over the same operands land on the same key."""
    if term_to_str(left) <= term_to_str(right):
        return left, right, rels
    return right, left, _flip_rels(rels)


def _numeric_value(term: Term) -> Optional[float]:
    """The numeric value of a ground arithmetic expression, else ``None``."""
    if term_variables(term):
        return None
    try:
        return float(evaluate_arithmetic(term, _EMPTY_SUBST))
    except EvaluationError:
        return None


def _rule_kind(rule: Rule) -> Optional[str]:
    head = rule.head
    if isinstance(head, Compound) and head.arity == 2 and head.functor in (
        "initiatedAt",
        "terminatedAt",
        "holdsFor",
    ):
        return head.functor
    return None


def _safe_key(term: Term) -> Optional[FluentKey]:
    try:
        return fluent_key(term)
    except ValueError:
        return None


def _describe_position(position: Tuple[str, int, int]) -> str:
    functor, arity, index = position
    if index == arity:
        return "the value of fluent %s/%d" % (functor, arity)
    return "argument %d of %s/%d" % (index + 1, functor, arity)


# ---------------------------------------------------------------------------
# Sort inference (RTEC017)


@dataclass
class SortClass:
    """One union-find equivalence class of argument positions."""

    positions: List[Tuple[str, int, int]] = field(default_factory=list)
    #: (rendered constant, rule index or None for kb/declarations, position)
    numeric_observations: List[Tuple[str, Optional[int], Tuple[str, int, int]]] = field(
        default_factory=list
    )
    symbolic_observations: List[Tuple[str, Optional[int], Tuple[str, int, int]]] = field(
        default_factory=list
    )
    #: rule indices where a variable of this class flows into a comparison
    #: or arithmetic expression.
    numeric_uses: List[int] = field(default_factory=list)

    @property
    def clash(self) -> bool:
        has_numeric = bool(self.numeric_observations) or bool(self.numeric_uses)
        return has_numeric and bool(self.symbolic_observations)


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[Tuple[str, int, int], Tuple[str, int, int]] = {}
        self._order: List[Tuple[str, int, int]] = []

    def find(self, key: Tuple[str, int, int]) -> Tuple[str, int, int]:
        parent = self._parent.get(key)
        if parent is None:
            self._parent[key] = key
            self._order.append(key)
            return key
        root = key
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[key] != root:
            self._parent[key], key = root, self._parent[key]
        return root

    def union(self, left: Tuple[str, int, int], right: Tuple[str, int, int]) -> None:
        left_root, right_root = self.find(left), self.find(right)
        if left_root != right_root:
            self._parent[right_root] = left_root

    def classes(self) -> Dict[Tuple[str, int, int], List[Tuple[str, int, int]]]:
        grouped: Dict[Tuple[str, int, int], List[Tuple[str, int, int]]] = {}
        for key in self._order:
            grouped.setdefault(self.find(key), []).append(key)
        return grouped


def _schema_positions(term: Term) -> Iterable[Tuple[Tuple[str, int, int], Term]]:
    """(position, argument) pairs of one event/fluent/background compound."""
    if not isinstance(term, Compound):
        return
    for index, arg in enumerate(term.args):
        yield (term.functor, term.arity, index), arg


def _fvp_positions(pair: Term) -> Iterable[Tuple[Tuple[str, int, int], Term]]:
    """Positions of a fluent-value pair: fluent arguments plus value slot."""
    if not (isinstance(pair, Compound) and is_fvp(pair)):
        return
    fluent, value = pair.args
    if isinstance(fluent, Compound):
        for position_arg in _schema_positions(fluent):
            yield position_arg
        yield (fluent.functor, fluent.arity, fluent.arity), value
    elif isinstance(fluent, Constant) and not fluent.is_number:
        yield (str(fluent.value), 0, 0), value


def _mark_numeric_vars(term: Term, marked: Set[Variable]) -> None:
    for var in term_variables(term):
        marked.add(var)


class _SortInference:
    def __init__(self) -> None:
        self.union_find = _UnionFind()
        self.observations: List[
            Tuple[Tuple[str, int, int], str, bool, Optional[int]]
        ] = []  # (position, rendered constant, is_numeric, rule index)
        self.numeric_use_positions: List[Tuple[Tuple[str, int, int], int]] = []

    def observe(
        self,
        positions: Iterable[Tuple[Tuple[str, int, int], Term]],
        rule_index: Optional[int],
        var_positions: Optional[Dict[Variable, Tuple[str, int, int]]],
    ) -> None:
        for position, arg in positions:
            self.union_find.find(position)
            if isinstance(arg, Constant):
                self.observations.append(
                    (position, term_to_str(arg), bool(arg.is_number), rule_index)
                )
            elif isinstance(arg, Variable) and var_positions is not None:
                first = var_positions.get(arg)
                if first is None:
                    var_positions[arg] = position
                else:
                    self.union_find.union(first, position)

    def add_rule(self, index: int, rule: Rule) -> None:
        var_positions: Dict[Variable, Tuple[str, int, int]] = {}
        numeric_vars: Set[Variable] = set()
        head = rule.head
        if isinstance(head, Compound) and head.arity == 2:
            if head.functor in ("initiatedAt", "terminatedAt", "holdsFor"):
                self.observe(_fvp_positions(head.args[0]), index, var_positions)
            elif head.functor in ("initially", "maxDuration"):
                self.observe(_fvp_positions(head.args[0]), index, var_positions)
        elif isinstance(head, Compound) and head.functor == "initially" and head.arity == 1:
            self.observe(_fvp_positions(head.args[0]), index, var_positions)
        for literal in rule.body:
            term = literal.term
            if not isinstance(term, Compound):
                continue
            if is_comparison(term):
                _mark_numeric_vars(term, numeric_vars)
            elif term.functor == "happensAt" and term.arity == 2:
                self.observe(_schema_positions(term.args[0]), index, var_positions)
            elif term.functor in ("holdsAt", "holdsFor") and term.arity == 2:
                self.observe(_fvp_positions(term.args[0]), index, var_positions)
            elif term.functor in INTERVAL_CONSTRUCTS:
                continue  # interval variables have their own sort
            else:
                self.observe(_schema_positions(term), index, var_positions)
        for var in numeric_vars:
            position = var_positions.get(var)
            if position is not None:
                self.numeric_use_positions.append((position, index))

    def add_knowledge_base(self, kb: KnowledgeBase) -> None:
        for fact in kb.facts():
            self.observe(_schema_positions(fact), None, None)

    def classes(self) -> List[SortClass]:
        grouped = self.union_find.classes()
        by_root: Dict[Tuple[str, int, int], SortClass] = {
            root: SortClass(positions=members) for root, members in grouped.items()
        }
        for position, rendered, numeric, rule_index in self.observations:
            cls = by_root[self.union_find.find(position)]
            target = cls.numeric_observations if numeric else cls.symbolic_observations
            target.append((rendered, rule_index, position))
        for position, rule_index in self.numeric_use_positions:
            by_root[self.union_find.find(position)].numeric_uses.append(rule_index)
        return [by_root[root] for root in grouped]


def _sort_clash_diagnostics(classes: Sequence[SortClass]) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    for cls in classes:
        if not cls.clash:
            continue
        numeric = cls.numeric_observations
        symbolic = cls.symbolic_observations
        minority, majority = (numeric, symbolic) if len(numeric) <= len(symbolic) else (
            symbolic,
            numeric,
        )
        anchor = next((obs for obs in minority if obs[1] is not None), None)
        if anchor is None:
            anchor = next((obs for obs in majority if obs[1] is not None), None)
        position = anchor[2] if anchor is not None else cls.positions[0]
        rule_index = anchor[1] if anchor is not None else None

        def _sample(observations: List[Tuple[str, Optional[int], Tuple[str, int, int]]]) -> str:
            seen: List[str] = []
            for rendered, _idx, _pos in observations:
                if rendered not in seen:
                    seen.append(rendered)
                if len(seen) >= 4:
                    break
            return "{%s}" % ", ".join(seen)

        numeric_part = _sample(numeric) if numeric else "(used in comparisons)"
        diagnostics.append(
            Diagnostic(
                "sort-clash",
                "%s mixes numeric and symbolic constants: numeric %s vs symbolic %s"
                % (_describe_position(position), numeric_part, _sample(symbolic)),
                rule_index=rule_index,
            )
        )
    return diagnostics


# ---------------------------------------------------------------------------
# Value-domain analysis of one rule body (RTEC019/020/021)


@dataclass
class RuleFacts:
    """Per-rule facts derived by the value-domain analysis."""

    rule_index: int
    #: The rule's conjunction of comparisons is provably unsatisfiable (the
    #: two condition indices witness it; they coincide when a single
    #: condition or derived bounds suffice).
    contradiction: Optional[Tuple[int, int]] = None
    #: Condition indices that always succeed and may be dropped.
    always_true: Set[int] = field(default_factory=set)
    #: Condition indices that always fail (ground comparisons).
    always_false: Set[int] = field(default_factory=set)
    #: implied condition index -> index of the condition implying it.
    subsumed: Dict[int, int] = field(default_factory=dict)
    #: Positive holdsAt/holdsFor refs to values no rule can produce.
    impossible_refs: Set[int] = field(default_factory=set)
    #: Negated refs to impossible values (always succeed; droppable).
    vacuous_refs: Set[int] = field(default_factory=set)

    @property
    def never_fires(self) -> bool:
        return (
            self.contradiction is not None
            or bool(self.always_false)
            or bool(self.impossible_refs)
        )


def _region(rels: FrozenSet[str], value: float) -> Optional[Tuple[float, bool, float, bool]]:
    """The set ``{x | x rel value}`` as (lo, lo_open, hi, hi_open), when it
    is an interval; ``None`` for punctured regions (``=\\=``)."""
    if rels == frozenset({"<"}):
        return (-_INF, True, value, True)
    if rels == frozenset({"<", "="}):
        return (-_INF, True, value, False)
    if rels == frozenset({">"}):
        return (value, True, _INF, True)
    if rels == frozenset({">", "="}):
        return (value, False, _INF, True)
    if rels == frozenset({"="}):
        return (value, False, value, False)
    return None


def _region_contains(outer: Tuple[float, bool, float, bool], inner: Tuple[float, bool, float, bool]) -> bool:
    o_lo, o_lo_open, o_hi, o_hi_open = outer
    i_lo, i_lo_open, i_hi, i_hi_open = inner
    lo_ok = o_lo < i_lo or (o_lo == i_lo and (not o_lo_open or i_lo_open))
    hi_ok = o_hi > i_hi or (o_hi == i_hi and (not o_hi_open or i_hi_open))
    return lo_ok and hi_ok


def background_bounds(rule: Rule, kb: Optional[KnowledgeBase]) -> Dict[Variable, Tuple[float, float]]:
    """Closed interval hulls for variables bound by positive background
    literals, derived from the facts matching each literal independently.

    Matching facts of a literal are a superset of its contribution to any
    joint solution, so the hull is sound (it may only be too wide).
    """
    bounds: Dict[Variable, Tuple[float, float]] = {}
    if kb is None:
        return bounds
    for literal in rule.body:
        term = literal.term
        if literal.negated or not isinstance(term, Compound):
            continue
        if term.functor in STREAM_FUNCTORS or term.functor in INTERVAL_CONSTRUCTS:
            continue
        if is_comparison(term) or term.functor in EVALUABLE_FUNCTORS:
            continue
        solutions: List[Substitution] = []
        for subst in kb.query(term):
            solutions.append(subst)
            if len(solutions) > _KB_SCAN_CAP:
                break
        if not solutions or len(solutions) > _KB_SCAN_CAP:
            continue
        for var in term_variables(term):
            values: List[float] = []
            for subst in solutions:
                resolved = subst.resolve(var)
                if isinstance(resolved, Constant) and resolved.is_number:
                    values.append(float(resolved.value))
                else:
                    values = []
                    break
            if values:
                lo, hi = min(values), max(values)
                old = bounds.get(var)
                if old is not None:
                    lo, hi = max(lo, old[0]), min(hi, old[1])
                bounds[var] = (lo, hi)
    return bounds


def comparison_facts(
    rule: Rule,
    rule_index: int,
    kb: Optional[KnowledgeBase] = None,
) -> RuleFacts:
    """Value-domain facts of one simple rule body (see :class:`RuleFacts`)."""
    facts = RuleFacts(rule_index)
    pair_entries: Dict[Tuple[Term, Term], List[Tuple[int, FrozenSet[str]]]] = {}
    var_const: List[Tuple[int, Variable, FrozenSet[str], float]] = []
    var_var: List[Tuple[int, Variable, Variable, FrozenSet[str]]] = []

    for index, literal in enumerate(rule.body):
        term = literal.term
        if not is_comparison(term):
            continue
        assert isinstance(term, Compound)
        rels = _relation_set(term.functor, literal.negated)
        if rels is None:
            continue
        left, right = term.args
        if not term_variables(term):
            try:
                truth = evaluate_comparison(term, _EMPTY_SUBST)
            except EvaluationError:
                continue
            succeeds = truth != literal.negated
            if succeeds:
                facts.always_true.add(index)
            else:
                facts.always_false.add(index)
            continue
        if left == right:
            if "=" in rels:
                facts.always_true.add(index)
            else:
                facts.always_false.add(index)
                if facts.contradiction is None:
                    facts.contradiction = (index, index)
            continue
        o_left, o_right, o_rels = _orient(left, right, rels)
        entries = pair_entries.setdefault((o_left, o_right), [])
        for prev_index, prev_rels in entries:
            if prev_index in facts.subsumed or index in facts.subsumed:
                continue
            if not (prev_rels & o_rels):
                if facts.contradiction is None:
                    facts.contradiction = (prev_index, index)
            elif prev_rels <= o_rels:
                facts.subsumed[index] = prev_index
            elif o_rels < prev_rels:
                facts.subsumed[prev_index] = index
        entries.append((index, o_rels))
        if isinstance(o_left, Variable):
            value = _numeric_value(o_right)
            if value is not None:
                var_const.append((index, o_left, o_rels, value))
                continue
        if isinstance(o_right, Variable):
            value = _numeric_value(o_left)
            if value is not None:
                var_const.append((index, o_right, _flip_rels(o_rels), value))
                continue
        if isinstance(o_left, Variable) and isinstance(o_right, Variable):
            var_var.append((index, o_left, o_right, o_rels))

    # Interval hulls per variable (closed; strict bounds widened — sound for
    # proving emptiness since the true region is a subset of the hull).
    hulls: Dict[Variable, Tuple[float, float]] = dict(background_bounds(rule, kb))
    last_contributor: Dict[Variable, int] = {}
    for index, var, rels, value in var_const:
        lo, hi = hulls.get(var, (-_INF, _INF))
        if "<" in rels and "=" in rels:
            hi = min(hi, value)
        elif rels == frozenset({"<"}):
            hi = min(hi, value)
        if ">" in rels and "=" in rels:
            lo = max(lo, value)
        elif rels == frozenset({">"}):
            lo = max(lo, value)
        if rels == frozenset({"="}):
            lo, hi = max(lo, value), min(hi, value)
        hulls[var] = (lo, hi)
        if lo > hi and facts.contradiction is None:
            facts.contradiction = (last_contributor.get(var, index), index)
        last_contributor.setdefault(var, index)

    # Variable-vs-variable comparisons against the final hulls.
    if facts.contradiction is None:
        for index, left_var, right_var, rels in var_var:
            l_lo, l_hi = hulls.get(left_var, (-_INF, _INF))
            r_lo, r_hi = hulls.get(right_var, (-_INF, _INF))
            unsat = False
            if rels == frozenset({"<"}):
                unsat = l_lo >= r_hi
            elif rels == frozenset({"<", "="}):
                unsat = l_lo > r_hi
            elif rels == frozenset({">"}):
                unsat = l_hi <= r_lo
            elif rels == frozenset({">", "="}):
                unsat = l_hi < r_lo
            elif rels == frozenset({"="}):
                unsat = l_lo > r_hi or l_hi < r_lo
            if unsat:
                facts.contradiction = (index, index)
                break

    # Interval-containment subsumption across different constants on the
    # same variable (e.g. ``X < 5`` makes ``X < 7`` redundant).
    if facts.contradiction is None:
        regions: Dict[Variable, List[Tuple[int, Tuple[float, bool, float, bool]]]] = {}
        for index, var, rels, value in var_const:
            region = _region(rels, value)
            if region is None:
                continue
            for other_index, other_region in regions.setdefault(var, []):
                if index in facts.subsumed or other_index in facts.subsumed:
                    continue
                if _region_contains(other_region, region):
                    facts.subsumed.setdefault(other_index, index)
                elif _region_contains(region, other_region):
                    facts.subsumed.setdefault(index, other_index)
            regions[var].append((index, region))
    return facts


# ---------------------------------------------------------------------------
# Producible fluent values (RTEC018 / RTEC024)


def producible_values(description: EventDescription) -> Dict[FluentKey, Optional[Set[Term]]]:
    """The values each defined fluent can take, per key; ``None`` = open
    (some rule head has a non-ground value, so the domain is unknown)."""
    producible: Dict[FluentKey, Optional[Set[Term]]] = {}

    def _add(key: FluentKey, value: Term) -> None:
        current = producible.setdefault(key, set())
        if current is None:
            return
        if is_ground(value):
            current.add(value)
        else:
            producible[key] = None

    for key, definition in description.simple_fluents.items():
        producible.setdefault(key, set())
        for rule in definition.initiated_rules:
            _add(key, head_fvp(rule)[1])
    for key, definition in description.static_fluents.items():
        producible.setdefault(key, set())
        for rule in definition.rules:
            _add(key, head_fvp(rule)[1])
    for pair in description.initial_fvps:
        key = _safe_key(pair.args[0])
        if key is not None and key in producible:
            _add(key, pair.args[1])
    return producible


def _fluent_references(rule: Rule) -> Iterable[Tuple[int, Literal, FluentKey, Term]]:
    """(condition index, literal, fluent key, value) for each holdsAt/holdsFor
    body condition whose fluent key is resolvable."""
    for index, literal in enumerate(rule.body):
        term = literal.term
        if not (
            isinstance(term, Compound)
            and term.functor in ("holdsAt", "holdsFor")
            and term.arity == 2
        ):
            continue
        pair = term.args[0]
        if not (isinstance(pair, Compound) and is_fvp(pair)):
            continue
        key = _safe_key(pair.args[0])
        if key is None:
            continue
        yield index, literal, key, pair.args[1]


def _impossible_value_facts(
    description: EventDescription,
    producible: Dict[FluentKey, Optional[Set[Term]]],
    rule_facts: Dict[int, RuleFacts],
) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    for index, rule in enumerate(description.rules):
        if _rule_kind(rule) is None:
            continue
        for cond_index, literal, key, value in _fluent_references(rule):
            domain = producible.get(key)
            if domain is None or key not in producible:
                continue
            if not is_ground(value) or value in domain:
                continue
            facts = rule_facts.setdefault(index, RuleFacts(index))
            if literal.negated:
                facts.vacuous_refs.add(cond_index)
                suffix = "the negated condition always succeeds"
            else:
                facts.impossible_refs.add(cond_index)
                suffix = "the condition can never succeed"
            diagnostics.append(
                Diagnostic(
                    "impossible-value",
                    "%s references value %s, but %s/%d can only produce {%s}; %s"
                    % (
                        literal_to_str(literal),
                        term_to_str(value),
                        key[0],
                        key[1],
                        ", ".join(sorted(term_to_str(v) for v in domain)),
                        suffix,
                    ),
                    rule_index=index,
                    condition_index=cond_index,
                )
            )
    return diagnostics


def _initiable_values(
    description: EventDescription, key: FluentKey
) -> Tuple[Optional[Set[Term]], bool]:
    """(closed set of initiable values or None if open, has-any-initiation)."""
    definition = description.simple_fluents.get(key)
    values: Set[Term] = set()
    has_initiation = False
    if definition is not None:
        for rule in definition.initiated_rules:
            has_initiation = True
            value = head_fvp(rule)[1]
            if is_ground(value):
                values.add(value)
            else:
                return None, True
    for pair in description.initial_fvps:
        if _safe_key(pair.args[0]) == key:
            has_initiation = True
            values.add(pair.args[1])
    return values, has_initiation


def _dead_termination_diagnostics(
    description: EventDescription, rule_ids: Dict[int, int]
) -> Tuple[List[Diagnostic], Set[int]]:
    diagnostics: List[Diagnostic] = []
    dead: Set[int] = set()
    for key, definition in description.simple_fluents.items():
        if not definition.terminated_rules:
            continue
        initiable, has_initiation = _initiable_values(description, key)
        if not has_initiation or initiable is None:
            # No initiation at all is RTEC011 territory; an open domain
            # cannot prove any termination dead.
            continue
        for rule in definition.terminated_rules:
            value = head_fvp(rule)[1]
            if not is_ground(value) or value in initiable:
                continue
            index = rule_ids.get(id(rule))
            if index is None:
                continue
            dead.add(index)
            diagnostics.append(
                Diagnostic(
                    "dead-termination",
                    "terminatedAt targets %s=%s, but initiations only produce "
                    "{%s}: the termination can never pair with an initiation"
                    % (
                        key[0],
                        term_to_str(value),
                        ", ".join(sorted(term_to_str(v) for v in initiable)),
                    ),
                    rule_index=index,
                    fix=Fix("remove-rule", term_to_str(rule.head), ""),
                )
            )
    diagnostics.sort(key=lambda d: (d.rule_index is None, d.rule_index or 0))
    return diagnostics, dead


# ---------------------------------------------------------------------------
# Reachability / liveness (RTEC022 / RTEC023)


def _event_key(term: Term) -> Optional[FluentKey]:
    return _safe_key(term)


def _ref_possible(
    key: Optional[FluentKey],
    value: Term,
    state: Dict[FluentKey, Optional[Set[Term]]],
    input_fluent_keys: Set[FluentKey],
) -> bool:
    if key is None:
        return True
    if key in input_fluent_keys:
        return True
    if key not in state:
        return False
    values = state[key]
    if values is None:
        return True
    if not is_ground(value):
        return bool(values)
    return value in values


def _simple_rule_live(
    rule: Rule,
    state: Dict[FluentKey, Optional[Set[Term]]],
    input_events: Set[FluentKey],
    input_fluent_keys: Set[FluentKey],
    trust_events: bool,
) -> bool:
    for literal in rule.body:
        term = literal.term
        if literal.negated or not isinstance(term, Compound):
            continue
        if term.functor == "happensAt" and term.arity == 2:
            if not trust_events:
                continue
            key = _event_key(term.args[0])
            if key is not None and key not in input_events:
                return False
        elif term.functor == "holdsAt" and term.arity == 2:
            pair = term.args[0]
            if isinstance(pair, Compound) and is_fvp(pair):
                key = _safe_key(pair.args[0])
                if key is not None and not _ref_possible(
                    key, pair.args[1], state, input_fluent_keys
                ):
                    return False
    return True


def _static_rule_live(
    rule: Rule,
    state: Dict[FluentKey, Optional[Set[Term]]],
    input_fluent_keys: Set[FluentKey],
) -> bool:
    env: Dict[Variable, bool] = {}
    for literal in rule.body:
        term = literal.term
        if not isinstance(term, Compound):
            continue
        if term.functor == "holdsFor" and term.arity == 2:
            pair, interval = term.args
            live = True
            if isinstance(pair, Compound) and is_fvp(pair):
                key = _safe_key(pair.args[0])
                live = _ref_possible(key, pair.args[1], state, input_fluent_keys)
            if isinstance(interval, Variable):
                env[interval] = live
        elif term.functor in INTERVAL_CONSTRUCTS:

            def _element_liveness(list_term: Term) -> Optional[List[bool]]:
                if isinstance(list_term, Compound) and list_term.functor == LIST_FUNCTOR:
                    flags = []
                    for element in list_term.args:
                        if not isinstance(element, Variable):
                            return None
                        flags.append(env.get(element, False))
                    return flags
                return None

            out = term.args[-1]
            if not isinstance(out, Variable):
                return True  # malformed — leave to the structural pass
            if term.functor == "union_all" and term.arity == 2:
                flags = _element_liveness(term.args[0])
                env[out] = True if flags is None else any(flags)
            elif term.functor == "intersect_all" and term.arity == 2:
                flags = _element_liveness(term.args[0])
                env[out] = True if flags is None else all(flags) and bool(flags)
            elif term.functor == "relative_complement_all" and term.arity == 3:
                base = term.args[0]
                env[out] = env.get(base, True) if isinstance(base, Variable) else True
            else:
                return True
    head = rule.head
    if isinstance(head, Compound) and head.arity == 2:
        interval = head.args[1]
        if isinstance(interval, Variable):
            return env.get(interval, True)
    return True


def compute_reachability(
    description: EventDescription,
    input_events: Set[FluentKey],
    input_fluent_keys: Set[FluentKey],
    never_fires: Optional[Dict[int, bool]] = None,
    trust_events: bool = True,
) -> Dict[FluentKey, Optional[Set[Term]]]:
    """Fixpoint of the possibly-held value sets per defined fluent key.

    ``None`` means the domain is open (some live rule has a non-ground head
    value). A key mapped to the empty set is unreachable: no derivation
    path from any input event or input fluent produces it. The fixpoint is
    monotone over a finite lattice, so it terminates even on cyclic
    dependency graphs.
    """
    never = never_fires or {}
    rule_ids = {id(rule): index for index, rule in enumerate(description.rules)}
    state: Dict[FluentKey, Optional[Set[Term]]] = {}
    for key in description.simple_fluents:
        state[key] = None if key in input_fluent_keys else set()
    for key in description.static_fluents:
        state.setdefault(key, None if key in input_fluent_keys else set())
    for pair in description.initial_fvps:
        key = _safe_key(pair.args[0])
        if key in state and state[key] is not None:
            values = state[key]
            assert values is not None
            values.add(pair.args[1])

    def _contribute(key: FluentKey, value: Term) -> bool:
        values = state[key]
        if values is None:
            return False
        if not is_ground(value):
            state[key] = None
            return True
        if value not in values:
            values.add(value)
            return True
        return False

    changed = True
    while changed:
        changed = False
        for key, simple in description.simple_fluents.items():
            if state[key] is None:
                continue
            for rule in simple.initiated_rules:
                index = rule_ids.get(id(rule))
                if index is not None and never.get(index):
                    continue
                if _simple_rule_live(
                    rule, state, input_events, input_fluent_keys, trust_events
                ):
                    if _contribute(key, head_fvp(rule)[1]):
                        changed = True
        for key, static in description.static_fluents.items():
            if state[key] is None:
                continue
            for rule in static.rules:
                index = rule_ids.get(id(rule))
                if index is not None and never.get(index):
                    continue
                if _static_rule_live(rule, state, input_fluent_keys):
                    if _contribute(key, head_fvp(rule)[1]):
                        changed = True
    return state


def _reachability_diagnostics(
    description: EventDescription,
    state: Dict[FluentKey, Optional[Set[Term]]],
    outputs: Optional[Set[str]],
) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    initially_keys = {
        _safe_key(pair.args[0]) for pair in description.initial_fvps
    }
    for key, values in state.items():
        if values is None or values:
            continue
        simple = description.simple_fluents.get(key)
        if (
            simple is not None
            and simple.terminated_rules
            and not simple.initiated_rules
            and key not in initially_keys
        ):
            continue  # RTEC011 already explains this precisely
        defining: Optional[Rule] = None
        if simple is not None and simple.initiated_rules:
            defining = simple.initiated_rules[0]
        elif key in description.static_fluents:
            defining = description.static_fluents[key].rules[0]
        elif simple is not None and simple.terminated_rules:
            defining = simple.terminated_rules[0]
        rule_index = None
        if defining is not None:
            try:
                rule_index = description.rules.index(defining)
            except ValueError:
                rule_index = None
        category = "unreachable-fluent"
        detail = "defined fluent"
        if outputs and key[0] in outputs:
            category = "unreachable-output"
            detail = "declared output"
        diagnostics.append(
            Diagnostic(
                category,
                "%s %s/%d has no derivation path from any input event or "
                "input fluent: at run time it never holds"
                % (detail, key[0], key[1]),
                rule_index=rule_index,
            )
        )
    return diagnostics


# ---------------------------------------------------------------------------
# Entry points


@dataclass
class SemanticFacts:
    """Everything the semantic layer inferred, plus its diagnostics."""

    diagnostics: List[Diagnostic]
    producible: Dict[FluentKey, Optional[Set[Term]]]
    rule_facts: Dict[int, RuleFacts]
    sort_classes: List[SortClass]
    reachable_values: Optional[Dict[FluentKey, Optional[Set[Term]]]]
    unreachable: Set[FluentKey]
    dead_terminations: Set[int]


def analyse_semantics(
    description: EventDescription,
    vocabulary: Optional[Vocabulary] = None,
    kb: Optional[KnowledgeBase] = None,
    outputs: Optional[Set[str]] = None,
    extra_input_fluents: Iterable[FluentKey] = (),
    trust_events: bool = True,
) -> SemanticFacts:
    """Run sort inference, value-domain analysis and reachability.

    Reachability needs a vocabulary (the input-event/fluent universe) and
    is skipped without one; the other analyses are self-contained. ``kb``
    sharpens variable bounds and sort observations but is optional.
    """
    diagnostics: List[Diagnostic] = []

    # 1. Sort inference.
    inference = _SortInference()
    for index, rule in enumerate(description.rules):
        inference.add_rule(index, rule)
    if kb is not None:
        inference.add_knowledge_base(kb)
    sort_classes = inference.classes()
    diagnostics.extend(_sort_clash_diagnostics(sort_classes))

    # 2. Value-domain analysis.
    rule_facts: Dict[int, RuleFacts] = {}
    for index, rule in enumerate(description.rules):
        kind = _rule_kind(rule)
        if kind not in ("initiatedAt", "terminatedAt"):
            continue
        facts = comparison_facts(rule, index, kb)
        rule_facts[index] = facts
        for cond_index in sorted(facts.always_true | facts.always_false):
            literal = rule.body[cond_index]
            verdict = "true" if cond_index in facts.always_true else "false"
            has_vars = bool(term_variables(literal.term))
            reason = (
                "compares a term with itself" if has_vars else "contains no variables"
            )
            message = "%s %s and always evaluates %s" % (
                literal_to_str(literal),
                reason,
                verdict,
            )
            if verdict == "false":
                message += ": the rule can never fire"
            diagnostics.append(
                Diagnostic(
                    "constant-comparison",
                    message,
                    rule_index=index,
                    condition_index=cond_index,
                )
            )
        if facts.contradiction is not None:
            first, second = facts.contradiction
            if first == second:
                witness = literal_to_str(rule.body[first])
            else:
                witness = "%s together with %s" % (
                    literal_to_str(rule.body[first]),
                    literal_to_str(rule.body[second]),
                )
            diagnostics.append(
                Diagnostic(
                    "contradictory-conditions",
                    "the comparison conditions are unsatisfiable (%s): the "
                    "rule can never fire" % witness,
                    rule_index=index,
                    condition_index=second,
                    fix=Fix("remove-rule", term_to_str(rule.head), ""),
                )
            )
        else:
            for cond_index in sorted(facts.subsumed):
                implier = facts.subsumed[cond_index]
                diagnostics.append(
                    Diagnostic(
                        "subsumed-condition",
                        "%s is implied by %s and can be dropped"
                        % (
                            literal_to_str(rule.body[cond_index]),
                            literal_to_str(rule.body[implier]),
                        ),
                        rule_index=index,
                        condition_index=cond_index,
                        fix=Fix(
                            "drop-condition",
                            literal_to_str(rule.body[cond_index]),
                            "",
                        ),
                    )
                )

    # 3. Producible values / impossible references / dead terminations.
    producible = producible_values(description)
    diagnostics.extend(_impossible_value_facts(description, producible, rule_facts))
    rule_ids = {id(rule): index for index, rule in enumerate(description.rules)}
    dead_diags, dead_terminations = _dead_termination_diagnostics(description, rule_ids)
    diagnostics.extend(dead_diags)

    # 4. Reachability (needs the input universe).
    reachable_values: Optional[Dict[FluentKey, Optional[Set[Term]]]] = None
    unreachable: Set[FluentKey] = set()
    if vocabulary is not None:
        # Only simple rules die from impossible refs/contradictions: a
        # holdsFor body condition over an impossible value merely binds an
        # empty interval list, which the dataflow in _static_rule_live
        # already models.
        never: Dict[int, bool] = {}
        for index, facts in rule_facts.items():
            if _rule_kind(description.rules[index]) in ("initiatedAt", "terminatedAt"):
                never[index] = facts.never_fires
        for index in dead_terminations:
            never[index] = True
        reachable_values = compute_reachability(
            description,
            input_events=set(vocabulary.input_events),
            input_fluent_keys=set(vocabulary.input_fluents) | set(extra_input_fluents),
            never_fires=never,
            trust_events=trust_events,
        )
        unreachable = {
            key for key, values in reachable_values.items() if values is not None and not values
        }
        diagnostics.extend(
            _reachability_diagnostics(description, reachable_values, outputs)
        )

    return SemanticFacts(
        diagnostics=diagnostics,
        producible=producible,
        rule_facts=rule_facts,
        sort_classes=sort_classes,
        reachable_values=reachable_values,
        unreachable=unreachable,
        dead_terminations=dead_terminations,
    )


def semantic_pass(ctx: AnalysisContext) -> List[Diagnostic]:
    """Analyzer pass adapter: surfaces RTEC017–RTEC024."""
    facts = analyse_semantics(
        ctx.description,
        vocabulary=ctx.vocabulary,
        kb=ctx.kb,
        outputs=ctx.outputs,
    )
    return facts.diagnostics
