"""Diagnostic-driven iterative repair of generated event descriptions.

This module closes the static-analysis feedback cycle of the paper's
pipeline: instead of a *single* mechanical correction pass (Section 5.2's
"minimum required changes"), :func:`repair_event_description` runs the full
analyser (:func:`repro.analysis.analyzer.analyse`) over a generated event
description, applies every machine-applicable fix, renders the diagnostics
it cannot fix into structured repair prompts
(:func:`repro.llm.prompts.prompt_repair`) fed back to the model, and
iterates until the description is clean — or provably cannot improve.

Repair plan
-----------
Each iteration builds a plan from the analyser report:

* diagnostics whose registry entry (:data:`repro.analysis.registry.LINT_RULES`)
  says ``repair == "auto"`` *and* that carry a
  :class:`~repro.analysis.diagnostics.Fix` are applied mechanically through
  the shared fixer machinery (:mod:`repro.analysis.fixers`), with
  cross-diagnostic conflict detection: conflicting renames of the same name
  are resolved by sorted order (and reported), a rule that is both removed
  and condition-dropped is removed (drops on it are moot), and structural
  spans are content-verified before application;
* the remaining repairable diagnostics (``repair == "prompt"``, plus
  parse errors recorded on individual activities) are grouped per activity
  and rendered into repair prompts; the model's replies replace those
  activities' definitions.

Termination guard
-----------------
The loop keeps the *signature* (rendered rule text, or raw text for
unparseable activities) of every state it has visited. After each
iteration the new signature is compared against the history:

* equal to the immediately preceding signature — nothing changed; no
  further iteration can change anything either (the plan is a
  deterministic function of the state), so the loop stops at a
  **fixpoint** with diagnostics remaining;
* equal to an older signature — the loop is **oscillating** (e.g. two
  fixes that undo each other, or a model that keeps re-introducing a fixed
  error); the loop stops and reports the cycle;
* otherwise the signature is strictly new, and since at most ``budget``
  iterations run, the loop terminates after at most ``budget`` analyser
  runs in every case.

Hence the loop provably terminates: every iteration either ends in a
terminal status (``converged``/``fixpoint``/``oscillating``) or visits a
fresh state, of which at most ``budget`` are explored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro import telemetry
from repro.analysis.diagnostics import Diagnostic, LintReport
from repro.analysis.fixers import fix_maps, rewrite_rule, structural_fixes
from repro.analysis.registry import LINT_RULES
from repro.llm.interface import ChatMessage
from repro.llm.pipeline import (
    DomainSpec,
    GeneratedActivity,
    GeneratedEventDescription,
    GenerationPipeline,
)
from repro.llm.prompts import prompt_repair
from repro.logic.knowledge import KnowledgeBase
from repro.logic.parser import ParseError, Rule, parse_program
from repro.logic.pretty import program_to_str
from repro.rtec.description import Vocabulary

__all__ = [
    "RepairAction",
    "RepairIteration",
    "RepairResult",
    "repair_mode",
    "generic_similarity",
    "repair_event_description",
]

#: Terminal statuses of a repair run.
STATUSES = ("clean", "converged", "fixpoint", "oscillating", "budget-exhausted")


def repair_mode(diagnostic: Diagnostic) -> Optional[str]:
    """How the repair loop handles one diagnostic.

    ``"auto"`` — the registry marks the code auto-repairable and the
    diagnostic carries a fix; ``"prompt"`` — the code is repairable but
    only by re-prompting (including auto codes whose fix could not be
    computed); ``None`` — not repairable (informational lints).
    """
    rule = LINT_RULES.get(diagnostic.code)
    if rule is None or rule.repair is None:
        return None
    if rule.repair == "auto" and diagnostic.fix is None:
        return "prompt"
    return rule.repair


def generic_similarity(generated: GeneratedEventDescription) -> float:
    """Mean similarity of each activity's rules to its group's gold rules.

    Unlike :func:`repro.generation.metrics.average_similarity` this is not
    bound to the maritime activity groups: it scores whatever groups the
    generated description carries, so it works for any domain.
    """
    from repro.similarity import event_description_similarity

    scores: List[float] = []
    for activity in generated.activities:
        gold_rules = parse_program(activity.group.rules_text)
        scores.append(event_description_similarity(activity.rules, gold_rules))
    return sum(scores) / len(scores) if scores else 1.0


@dataclass(frozen=True)
class RepairAction:
    """One mechanically applied fix."""

    code: str
    description: str
    rule_index: Optional[int] = None
    condition_index: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "description": self.description,
            "rule_index": self.rule_index,
            "condition_index": self.condition_index,
        }


@dataclass
class RepairIteration:
    """The per-iteration report of the repair loop."""

    index: int
    codes_before: List[str]
    codes_after: List[str]
    actions: List[RepairAction]
    conflicts: List[str]
    prompted_activities: List[str]
    similarity: float

    @property
    def fixed_codes(self) -> List[str]:
        """Codes present before this iteration and gone after it."""
        return sorted(set(self.codes_before) - set(self.codes_after))

    @property
    def regressed_codes(self) -> List[str]:
        """Codes absent before this iteration and present after it."""
        return sorted(set(self.codes_after) - set(self.codes_before))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "codes_before": list(self.codes_before),
            "codes_after": list(self.codes_after),
            "fixed_codes": self.fixed_codes,
            "regressed_codes": self.regressed_codes,
            "actions": [action.to_dict() for action in self.actions],
            "conflicts": list(self.conflicts),
            "prompted_activities": list(self.prompted_activities),
            "similarity": self.similarity,
        }


@dataclass
class RepairResult:
    """The outcome of a repair run."""

    status: str
    iterations: List[RepairIteration] = field(default_factory=list)
    initial_similarity: float = 0.0
    final_similarity: float = 0.0
    initial_codes: List[str] = field(default_factory=list)
    final_codes: List[str] = field(default_factory=list)
    oscillation: Optional[str] = None
    generated: Optional[GeneratedEventDescription] = None
    final_report: Optional[LintReport] = None

    @property
    def converged(self) -> bool:
        """Whether the final state has no repairable diagnostics left."""
        return self.status in ("clean", "converged")

    @property
    def similarity_delta(self) -> float:
        return self.final_similarity - self.initial_similarity

    def to_dict(self) -> Dict[str, Any]:
        return {
            "status": self.status,
            "iterations": [iteration.to_dict() for iteration in self.iterations],
            "initial_similarity": self.initial_similarity,
            "final_similarity": self.final_similarity,
            "similarity_delta": self.similarity_delta,
            "initial_codes": list(self.initial_codes),
            "final_codes": list(self.final_codes),
            "oscillation": self.oscillation,
        }


# ---------------------------------------------------------------------------
# Internals
# ---------------------------------------------------------------------------


def _analyse(
    generated: GeneratedEventDescription,
    vocabulary: Optional[Vocabulary],
    kb: Optional[KnowledgeBase],
    outputs: Optional[Sequence[str]],
) -> LintReport:
    from repro.analysis.analyzer import analyse

    return analyse(
        generated.to_event_description(), vocabulary=vocabulary, kb=kb, outputs=outputs
    )


def _actionable_codes(
    generated: GeneratedEventDescription, report: LintReport
) -> List[str]:
    """The repairable diagnostic codes of a state (sorted, with duplicates).

    Parse errors recorded on individual activities do not appear in the
    analyser report (unparseable text contributes no rules), so each one
    counts as an ``RTEC001``.
    """
    codes = [d.code for d in report.diagnostics if repair_mode(d) is not None]
    codes.extend("RTEC001" for a in generated.activities if a.parse_error)
    return sorted(codes)


def _signature(generated: GeneratedEventDescription) -> str:
    parts: List[str] = []
    for activity in generated.activities:
        if activity.parse_error:
            parts.append("!" + activity.raw_text)
        else:
            parts.append(program_to_str(activity.rules))
    return "\n%%\n".join(parts)


def _activity_of(
    generated: GeneratedEventDescription, rule_index: Optional[int]
) -> Optional[int]:
    """Map a concatenated-description rule index to its activity index."""
    if rule_index is None:
        return None
    offset = 0
    for index, activity in enumerate(generated.activities):
        if rule_index < offset + len(activity.rules):
            return index
        offset += len(activity.rules)
    return None


def _detect_conflicts(
    auto: Sequence[Diagnostic], rules: Sequence[Rule]
) -> List[str]:
    """Cross-diagnostic conflicts in a batch of auto-fixes (for the report).

    The fixer machinery already resolves these deterministically (sorted
    rename pairs win; removals make drops on the same rule moot); this
    records what was overridden so the iteration report can show it.
    """
    conflicts: List[str] = []
    by_old: Dict[Tuple[str, str], Set[str]] = {}
    for diagnostic in auto:
        fix = diagnostic.fix
        if fix is not None and fix.kind in ("rename-functor", "rename-constant"):
            by_old.setdefault((fix.kind, fix.old), set()).add(fix.new)
    for (kind, old), news in sorted(by_old.items()):
        if len(news) > 1:
            keep = sorted(news)[0]
            conflicts.append(
                "conflicting %s fixes for %r: kept %r, skipped %s"
                % (kind, old, keep, ", ".join(repr(n) for n in sorted(news - {keep})))
            )
    drops, removals = structural_fixes(auto, rules)
    for rule_index in sorted(set(drops) & removals):
        conflicts.append(
            "rule %d is both removed and condition-dropped; removal wins"
            % rule_index
        )
    return conflicts


def _apply_auto(
    generated: GeneratedEventDescription, auto: Sequence[Diagnostic]
) -> GeneratedEventDescription:
    """Apply a batch of auto-fix diagnostics activity by activity.

    The diagnostics' rule indices refer to the concatenated description
    (the analyser's view); renames are global, structural spans are mapped
    back through each activity's offset.
    """
    all_rules = generated.all_rules()
    functor_map, constant_map = fix_maps(auto)
    drops, removals = structural_fixes(auto, all_rules)
    activities: List[GeneratedActivity] = []
    offset = 0
    for activity in generated.activities:
        rules: List[Rule] = []
        for local_index, rule in enumerate(activity.rules):
            global_index = offset + local_index
            if global_index in removals:
                continue
            if functor_map or constant_map:
                rule = rewrite_rule(rule, functor_map, constant_map)
            dropped = drops.get(global_index)
            if dropped:
                rule = Rule(
                    rule.head,
                    tuple(
                        literal
                        for cond_index, literal in enumerate(rule.body)
                        if cond_index not in dropped
                    ),
                )
            rules.append(rule)
        offset += len(activity.rules)
        activities.append(
            GeneratedActivity(
                group=activity.group,
                raw_text=activity.raw_text,
                rules=rules,
                parse_error=activity.parse_error,
            )
        )
    return GeneratedEventDescription(
        model=generated.model, scheme=generated.scheme, activities=activities
    )


def _promptable_batches(
    generated: GeneratedEventDescription, report: LintReport
) -> Dict[int, List[str]]:
    """Group unresolved repairable diagnostics into per-activity prompt text.

    Diagnostics with a rule span go to the activity owning the rule;
    global diagnostics (no span — e.g. dependency cycles) are broadcast to
    every prompted activity, or to every activity with any rules when no
    activity-specific diagnostic exists. Activities with parse errors are
    always prompted, with a synthesised syntax diagnostic.
    """
    batches: Dict[int, List[str]] = {}
    global_lines: List[str] = []
    for diagnostic in report.diagnostics:
        if repair_mode(diagnostic) != "prompt":
            continue
        activity_index = _activity_of(generated, diagnostic.rule_index)
        if activity_index is None:
            global_lines.append(str(diagnostic))
        else:
            batches.setdefault(activity_index, []).append(str(diagnostic))
    for index, activity in enumerate(generated.activities):
        if activity.parse_error:
            batches.setdefault(index, []).append(
                "[RTEC001 syntax] the definition failed to parse: %s"
                % activity.parse_error
            )
    if global_lines:
        targets = sorted(batches) or [
            index
            for index, activity in enumerate(generated.activities)
            if activity.rules
        ]
        for index in targets:
            batches.setdefault(index, []).extend(global_lines)
    return batches


def _teaching_conversation(
    client, scheme: str, domain: DomainSpec
) -> List[ChatMessage]:
    """The pipeline's teaching context, with stand-in acknowledgements.

    Repair prompts are issued in a conversation that carries the same R,
    F/F*, E and T prompts as the original generation, so a client that
    infers the prompting scheme from its context (as the simulated models
    do) sees the same scheme during repair.
    """
    pipeline = GenerationPipeline(client, scheme, domain=domain)
    conversation: List[ChatMessage] = []
    for teaching_prompt in pipeline._teaching_prompts():
        conversation.append(ChatMessage("user", teaching_prompt))
        conversation.append(ChatMessage("assistant", "Understood."))
    return conversation


def _prompt_repairs(
    client,
    conversation: List[ChatMessage],
    generated: GeneratedEventDescription,
    batches: Dict[int, List[str]],
    domain: DomainSpec,
) -> GeneratedEventDescription:
    """Feed each activity's unresolved diagnostics back to the model."""
    activities = list(generated.activities)
    for index in sorted(batches):
        activity = activities[index]
        current_text = (
            program_to_str(activity.rules) if activity.rules else activity.raw_text
        )
        prompt = prompt_repair(
            activity.group.description,
            current_text.rstrip(),
            "\n".join(batches[index]),
            domain=domain.name,
        )
        conversation.append(ChatMessage("user", prompt))
        reply = client.complete(conversation)
        conversation.append(ChatMessage("assistant", reply))
        try:
            rules = parse_program(reply)
            activities[index] = GeneratedActivity(
                group=activity.group, raw_text=reply, rules=rules
            )
        except ParseError as exc:
            activities[index] = GeneratedActivity(
                group=activity.group, raw_text=reply, rules=[], parse_error=str(exc)
            )
    return GeneratedEventDescription(
        model=generated.model, scheme=generated.scheme, activities=activities
    )


def repair_event_description(
    generated: GeneratedEventDescription,
    vocabulary: Optional[Vocabulary] = None,
    kb: Optional[KnowledgeBase] = None,
    client=None,
    budget: int = 5,
    domain: Optional[DomainSpec] = None,
    outputs: Optional[Sequence[str]] = None,
) -> RepairResult:
    """Iterate analyse -> auto-fix -> re-prompt to a fixpoint or the budget.

    ``client`` is any LLM client (``complete(conversation) -> str``); with
    ``client=None`` only mechanical fixes are applied, and the loop stops
    at the first state they cannot improve. See the module docstring for
    the termination guarantee.
    """
    if domain is None:
        domain = DomainSpec()
    with telemetry.span(
        "analysis.repair", model=generated.model, scheme=generated.scheme
    ) as span:
        current = generated
        report = _analyse(current, vocabulary, kb, outputs)
        codes = _actionable_codes(current, report)
        initial_similarity = generic_similarity(current)
        result = RepairResult(
            status="clean",
            initial_similarity=initial_similarity,
            final_similarity=initial_similarity,
            initial_codes=list(codes),
            final_codes=list(codes),
            generated=current,
            final_report=report,
        )
        if not codes:
            return result
        signatures = [_signature(current)]
        conversation: Optional[List[ChatMessage]] = None
        result.status = "budget-exhausted"
        while len(result.iterations) < budget:
            span.count("iterations")
            codes_before = codes
            auto = [d for d in report.diagnostics if repair_mode(d) == "auto"]
            conflicts = _detect_conflicts(auto, current.all_rules())
            actions = [
                RepairAction(
                    d.code, d.fix.describe(), d.rule_index, d.condition_index
                )
                for d in auto
                if d.fix is not None
            ]
            if auto:
                current = _apply_auto(current, auto)
                span.count("auto_fixes", len(auto))
            prompted_names: List[str] = []
            if client is not None:
                mid_report = _analyse(current, vocabulary, kb, outputs)
                batches = _promptable_batches(current, mid_report)
                if batches:
                    if conversation is None:
                        conversation = _teaching_conversation(
                            client, current.scheme, domain
                        )
                    prompted_names = [
                        current.activities[index].name for index in sorted(batches)
                    ]
                    current = _prompt_repairs(
                        client, conversation, current, batches, domain
                    )
                    span.count("repair_prompts", len(batches))
            report = _analyse(current, vocabulary, kb, outputs)
            codes = _actionable_codes(current, report)
            similarity = generic_similarity(current)
            result.iterations.append(
                RepairIteration(
                    index=len(result.iterations) + 1,
                    codes_before=list(codes_before),
                    codes_after=list(codes),
                    actions=actions,
                    conflicts=conflicts,
                    prompted_activities=prompted_names,
                    similarity=similarity,
                )
            )
            result.generated = current
            result.final_report = report
            result.final_similarity = similarity
            result.final_codes = list(codes)
            signature = _signature(current)
            if not codes:
                result.status = "converged"
                break
            if signature == signatures[-1]:
                result.status = "fixpoint"
                break
            if signature in signatures:
                first = signatures.index(signature)
                cycle = len(signatures) - first
                result.status = "oscillating"
                result.oscillation = (
                    "iteration %d reproduced the state of iteration %d "
                    "(cycle length %d)" % (len(result.iterations), first, cycle)
                )
                break
            signatures.append(signature)
        if span.enabled:
            span.set(status=result.status)
        return result
