"""The multi-pass analyser driver.

:func:`analyse` runs every pass over an :class:`EventDescription` and
returns a :class:`~repro.analysis.diagnostics.LintReport`. Pass order is
significant only for readability of the report: the structural pass runs
first so that legacy consumers (e.g. the engine's strict mode) see the
familiar diagnostics in their familiar order, followed by the dataflow,
arity, consistency, dependency, partition and naming passes.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import Diagnostic, LintReport
from repro.analysis.passes import (
    AnalysisContext,
    arity_pass,
    binding_pass,
    consistency_pass,
    dependency_pass,
    naming_pass,
    partition_pass,
    structural_pass,
)
from repro.analysis.semantics import semantic_pass
from repro.logic.knowledge import KnowledgeBase
from repro.logic.parser import ParseError, clause_lines
from repro.rtec.description import EventDescription, Vocabulary

__all__ = ["PASSES", "analyse", "analyse_text"]

PASSES: Tuple[Callable[[AnalysisContext], List[Diagnostic]], ...] = (
    structural_pass,
    binding_pass,
    arity_pass,
    consistency_pass,
    dependency_pass,
    partition_pass,
    naming_pass,
    semantic_pass,
)


def analyse(
    description: EventDescription,
    vocabulary: Optional[Vocabulary] = None,
    kb: Optional[KnowledgeBase] = None,
    outputs: Optional[Sequence[str]] = None,
    text: Optional[str] = None,
    source: Optional[str] = None,
) -> LintReport:
    """Run all passes over ``description``.

    ``vocabulary`` enables the vocabulary-level checks and the naming pass;
    ``kb`` additionally enables constant-name fixes; ``outputs`` (the names
    of the fluents the recognition task reports) enables the dead-rule
    check; ``text`` (the source the description was parsed from) maps rule
    indices to source lines; ``source`` labels the report.
    """
    ctx = AnalysisContext(
        description=description, vocabulary=vocabulary, kb=kb, outputs=outputs
    )
    diagnostics: List[Diagnostic] = []
    for pass_fn in PASSES:
        diagnostics.extend(pass_fn(ctx))
    rule_lines = clause_lines(text) if text is not None else None
    return LintReport(diagnostics, source=source, rule_lines=rule_lines)


def analyse_text(
    text: str,
    vocabulary: Optional[Vocabulary] = None,
    kb: Optional[KnowledgeBase] = None,
    outputs: Optional[Sequence[str]] = None,
    source: Optional[str] = None,
) -> LintReport:
    """Parse and analyse; a parse failure yields a single RTEC001 diagnostic
    instead of raising (erroneous descriptions must be inspectable)."""
    try:
        description = EventDescription.from_text(text)
    except ParseError as exc:
        return LintReport(
            [Diagnostic("syntax", str(exc))],
            source=source,
        )
    return analyse(
        description,
        vocabulary=vocabulary,
        kb=kb,
        outputs=outputs,
        text=text,
        source=source,
    )
