"""Binding-order dataflow analysis of individual rules.

A rule body is a conjunction evaluated left to right (Definition 2.2); the
evaluators in :mod:`repro.rtec.simple` and :mod:`repro.rtec.static` raise
:class:`~repro.rtec.errors.EvaluationError` the moment a builtin receives
an unbound variable. This module simulates that evaluation symbolically —
tracking which variables each positive condition binds — and reports every
condition that is *guaranteed* to fail at run time, plus head variables no
body condition can ever bind.

The simulation is exact with respect to the runtime for this rule dialect:

* positive ``happensAt``/``holdsAt``/background conditions bind all their
  variables (stream matching and knowledge-base queries only yield ground
  extensions);
* negated conditions and comparisons bind nothing;
* the hoisting of atemporal prefixes in :mod:`repro.rtec.compile` only
  moves conditions that share no variables with later conditions, so it
  cannot change which variables are bound when a comparison is evaluated.

``holdsFor`` rule bodies have no textual-order variable binding (the seed
pass of :mod:`repro.rtec.static` grounds them up front), so for static
rules the analysis checks head groundability and interval-variable
single-assignment instead.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import List, Optional, Set

from repro.logic.parser import Rule
from repro.logic.terms import Compound, Constant, Term, Variable, is_fvp, term_variables
from repro.rtec.builtins import EVALUABLE_FUNCTORS, is_comparison
from repro.rtec.description import INTERVAL_CONSTRUCTS

__all__ = [
    "BindingIssue",
    "arithmetic_arity",
    "check_rule",
    "check_simple_rule",
    "check_static_rule",
]


@dataclass(frozen=True)
class BindingIssue:
    """One dataflow problem in a rule.

    ``category`` is a diagnostic category (``"unbound-variable"``,
    ``"unsafe-head"`` or ``"wrong-arity"``); ``condition_index`` is the
    0-based body position, or ``None`` for problems anchored at the head.
    """

    category: str
    message: str
    condition_index: Optional[int] = None


def arithmetic_arity(functor: str) -> Optional[int]:
    """The expected arity of an evaluable functor, or ``None`` if unknown."""
    fn = EVALUABLE_FUNCTORS.get(functor)
    if fn is None:
        return None
    return len(inspect.signature(fn).parameters)


def _is(term: Term, functor: str, arity: int) -> bool:
    return isinstance(term, Compound) and term.functor == functor and term.arity == arity


def check_rule(rule: Rule) -> List[BindingIssue]:
    """Dispatch on the rule head; rules of unknown shape yield no issues
    (the structural pass reports those as malformed)."""
    head = rule.head
    if not isinstance(head, Compound) or head.arity != 2:
        return []
    if head.functor in ("initiatedAt", "terminatedAt"):
        return check_simple_rule(rule)
    if head.functor == "holdsFor":
        return check_static_rule(rule)
    return []


def _check_expression(
    term: Term,
    bound: Set[Variable],
    index: int,
    comparison: Term,
    issues: List[BindingIssue],
) -> None:
    """Check one side of a comparison: every variable bound, every functor
    evaluable with the right arity, every constant numeric."""
    if isinstance(term, Variable):
        if term not in bound:
            issues.append(
                BindingIssue(
                    "unbound-variable",
                    "unbound variable %r reaches comparison %r (not bound by "
                    "any earlier condition)" % (term.name, comparison),
                    index,
                )
            )
    elif isinstance(term, Constant):
        if not term.is_number:
            issues.append(
                BindingIssue(
                    "unbound-variable",
                    "non-numeric constant %r in arithmetic expression of %r"
                    % (term.value, comparison),
                    index,
                )
            )
    elif isinstance(term, Compound):
        expected = arithmetic_arity(term.functor)
        if expected is None:
            issues.append(
                BindingIssue(
                    "wrong-arity",
                    "unknown arithmetic functor %s/%d in %r"
                    % (term.functor, term.arity, comparison),
                    index,
                )
            )
        elif term.arity != expected:
            issues.append(
                BindingIssue(
                    "wrong-arity",
                    "arithmetic functor %s expects %d argument(s), got %d in %r"
                    % (term.functor, expected, term.arity, comparison),
                    index,
                )
            )
        for arg in term.args:
            _check_expression(arg, bound, index, comparison, issues)


def check_simple_rule(rule: Rule) -> List[BindingIssue]:
    """Left-to-right dataflow over an ``initiatedAt``/``terminatedAt`` body."""
    issues: List[BindingIssue] = []
    body = rule.body
    if not body or body[0].negated or not _is(body[0].term, "happensAt", 2):
        return issues  # structurally malformed; the structural pass reports it
    bound: Set[Variable] = set(term_variables(body[0].term))
    for index, literal in enumerate(body[1:], start=1):
        term = literal.term
        if _is(term, "happensAt", 2):
            if not literal.negated:
                bound |= set(term_variables(term))
        elif _is(term, "holdsAt", 2):
            pair, time = term.args
            for var in sorted(set(term_variables(time)) - bound, key=lambda v: v.name):
                issues.append(
                    BindingIssue(
                        "unbound-variable",
                        "unbound variable %r as holdsAt time-point in %r"
                        % (var.name, term),
                        index,
                    )
                )
            if literal.negated:
                unbound = sorted(set(term_variables(pair)) - bound, key=lambda v: v.name)
                for var in unbound:
                    issues.append(
                        BindingIssue(
                            "unbound-variable",
                            "negated holdsAt requires ground arguments: unbound "
                            "variable %r in %r" % (var.name, term),
                            index,
                        )
                    )
            else:
                bound |= set(term_variables(term))
        elif is_comparison(term):
            assert isinstance(term, Compound)
            for side in term.args:
                _check_expression(side, bound, index, term, issues)
        elif _is(term, "holdsFor", 2) or (
            isinstance(term, Compound) and term.functor in INTERVAL_CONSTRUCTS
        ):
            continue  # not allowed in simple rules; structural pass reports it
        elif not literal.negated:
            # Positive atemporal background predicate: binds its variables.
            bound |= set(term_variables(term))
    head = rule.head
    assert isinstance(head, Compound)
    head_pair, head_time = head.args
    for var in sorted(set(term_variables(head_time)) - bound, key=lambda v: v.name):
        issues.append(
            BindingIssue(
                "unsafe-head",
                "head time-point variable %r of %r is never bound in the body"
                % (var.name, head),
            )
        )
    if head.functor == "initiatedAt":
        # Universal terminations may keep head variables free; initiations
        # must be ground after body evaluation (repro.rtec.simple).
        for var in sorted(set(term_variables(head_pair)) - bound, key=lambda v: v.name):
            issues.append(
                BindingIssue(
                    "unsafe-head",
                    "head variable %r of %r is never bound in the body "
                    "(initiations must be ground)" % (var.name, head),
                )
            )
    return issues


def check_static_rule(rule: Rule) -> List[BindingIssue]:
    """Groundability and interval single-assignment for a ``holdsFor`` body."""
    issues: List[BindingIssue] = []
    term_bound: Set[Variable] = set()
    interval_bound: Set[Variable] = set()

    def bind_output(out: Term, index: int) -> None:
        if isinstance(out, Variable):
            if out in interval_bound:
                issues.append(
                    BindingIssue(
                        "unbound-variable",
                        "interval variable %r is bound more than once" % out.name,
                        index,
                    )
                )
            interval_bound.add(out)

    for index, literal in enumerate(rule.body):
        term = literal.term
        if literal.negated:
            continue  # malformed in static rules; structural pass reports it
        if _is(term, "holdsFor", 2):
            assert isinstance(term, Compound)
            pair, out = term.args
            term_bound |= set(term_variables(pair))
            bind_output(out, index)
        elif isinstance(term, Compound) and term.functor in INTERVAL_CONSTRUCTS:
            if term.arity != INTERVAL_CONSTRUCTS[term.functor]:
                continue  # arity misuse reported by the structural/arity passes
            bind_output(term.args[-1], index)
        elif _is(term, "happensAt", 2) or _is(term, "holdsAt", 2):
            continue  # malformed in static rules; structural pass reports it
        else:
            # Atemporal background predicate: binds its variables.
            term_bound |= set(term_variables(term))
    head = rule.head
    assert isinstance(head, Compound)
    head_pair = head.args[0]
    if is_fvp(head_pair):
        unbound = sorted(set(term_variables(head_pair)) - term_bound, key=lambda v: v.name)
        for var in unbound:
            issues.append(
                BindingIssue(
                    "unsafe-head",
                    "holdsFor head variable %r of %r occurs in no body "
                    "condition (the head cannot become ground)" % (var.name, head),
                )
            )
    return issues
