"""SARIF 2.1.0 output for CI consumption.

`SARIF <https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_
is the interchange format GitHub code scanning (and most CI lint viewers)
ingest. One :class:`~repro.analysis.diagnostics.LintReport` maps to one
run of the ``repro-lint`` tool; the rule metadata comes from the registry.

When the analysed source text is supplied, machine-applicable fixes are
additionally rendered as SARIF ``fixes`` objects (``artifactChanges`` with
whole-rule ``replacements``), so SARIF-aware viewers can offer one-click
application. The replacement text is the re-rendered rule after applying
that diagnostic's fix alone; structural spans are verified against the
parsed source (see :mod:`repro.analysis.fixers`) before a fix is emitted.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import Diagnostic, LintReport, Severity
from repro.analysis.registry import LINT_RULES

__all__ = ["to_sarif"]

_SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _rule_regions(
    source_text: str, rule_lines: Sequence[int]
) -> List[Tuple[int, int]]:
    """Per-rule ``(startLine, endLine)`` (1-based, inclusive) text regions.

    Each rule runs from its recorded start line to the last non-blank line
    before the next rule (or the end of the text).
    """
    lines = source_text.splitlines()
    regions: List[Tuple[int, int]] = []
    for index, start in enumerate(rule_lines):
        if index + 1 < len(rule_lines):
            end = rule_lines[index + 1] - 1
        else:
            end = len(lines)
        while end > start and (end - 1 >= len(lines) or not lines[end - 1].strip()):
            end -= 1
        regions.append((start, end))
    return regions


def _replacement(region: Tuple[int, int], text: str) -> Dict[str, Any]:
    return {
        "deletedRegion": {"startLine": region[0], "endLine": region[1]},
        "insertedContent": {"text": text},
    }


def _fix_object(
    diagnostic: Diagnostic,
    rules,
    regions: List[Tuple[int, int]],
    artifact: str,
) -> Optional[Dict[str, Any]]:
    """The SARIF ``fix`` object of one diagnostic, if it can be located."""
    from repro.analysis.fixers import _span_matches, rewrite_rule
    from repro.logic.pretty import rule_to_str

    fix = diagnostic.fix
    assert fix is not None
    replacements: List[Dict[str, Any]] = []
    if fix.kind in ("rename-functor", "rename-constant"):
        functor_map = {fix.old: fix.new} if fix.kind == "rename-functor" else {}
        constant_map = {fix.old: fix.new} if fix.kind == "rename-constant" else {}
        for index, rule in enumerate(rules):
            rewritten = rewrite_rule(rule, functor_map, constant_map)
            if rewritten != rule:
                replacements.append(
                    _replacement(regions[index], rule_to_str(rewritten))
                )
    elif fix.kind == "drop-condition":
        if not _span_matches(rules, diagnostic, fix.old):
            return None
        rule = rules[diagnostic.rule_index]
        slimmed = type(rule)(
            rule.head,
            tuple(
                literal
                for cond_index, literal in enumerate(rule.body)
                if cond_index != diagnostic.condition_index
            ),
        )
        replacements.append(
            _replacement(regions[diagnostic.rule_index], rule_to_str(slimmed))
        )
    elif fix.kind == "remove-rule":
        if not _span_matches(rules, diagnostic, fix.old):
            return None
        replacements.append(_replacement(regions[diagnostic.rule_index], ""))
    if not replacements:
        return None
    return {
        "description": {"text": fix.describe()},
        "artifactChanges": [
            {
                "artifactLocation": {"uri": artifact},
                "replacements": replacements,
            }
        ],
    }


def to_sarif(
    report: LintReport,
    tool_version: str = "1.0.0",
    source_text: Optional[str] = None,
) -> Dict[str, Any]:
    """Render a lint report as a SARIF 2.1.0 log (a JSON-serialisable dict).

    With ``source_text`` (the analysed rule text), fixable diagnostics gain
    SARIF ``fixes`` objects whose replacements rewrite whole rules.
    """
    rules: List[Dict[str, Any]] = [
        {
            "id": rule.code,
            "name": rule.category,
            "shortDescription": {"text": rule.title},
            "fullDescription": {"text": rule.explanation},
            "helpUri": rule.help_uri,
            "defaultConfiguration": {"level": _SARIF_LEVELS[rule.severity]},
            "properties": {"repair": rule.repair, "fixable": rule.fixable},
        }
        for rule in sorted(LINT_RULES.values(), key=lambda r: r.code)
    ]
    rule_indices = {rule["id"]: index for index, rule in enumerate(rules)}
    artifact = report.source or "<input>"

    parsed_rules = None
    regions: List[Tuple[int, int]] = []
    if source_text is not None and report.rule_lines:
        from repro.logic.parser import ParseError, parse_program

        try:
            parsed_rules = parse_program(source_text)
        except ParseError:
            parsed_rules = None
        if parsed_rules is not None and len(parsed_rules) == len(report.rule_lines):
            regions = _rule_regions(source_text, report.rule_lines)
        else:
            parsed_rules = None

    results: List[Dict[str, Any]] = []
    for diagnostic in report.diagnostics:
        result: Dict[str, Any] = {
            "ruleId": diagnostic.code,
            "level": _SARIF_LEVELS.get(diagnostic.severity or Severity.ERROR, "error"),
            "message": {"text": diagnostic.message},
        }
        if diagnostic.code in rule_indices:
            result["ruleIndex"] = rule_indices[diagnostic.code]
        location: Dict[str, Any] = {
            "physicalLocation": {"artifactLocation": {"uri": artifact}}
        }
        line = report.line_for(diagnostic.rule_index)
        if line is not None:
            location["physicalLocation"]["region"] = {"startLine": line}
        result["locations"] = [location]
        if diagnostic.fix is not None:
            result["properties"] = {"fix": diagnostic.fix.describe()}
            if parsed_rules is not None:
                fix_object = _fix_object(diagnostic, parsed_rules, regions, artifact)
                if fix_object is not None:
                    result["fixes"] = [fix_object]
        results.append(result)
    return {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://github.com/aartikis/RTEC",
                        "version": tool_version,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
