"""SARIF 2.1.0 output for CI consumption.

`SARIF <https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_
is the interchange format GitHub code scanning (and most CI lint viewers)
ingest. One :class:`~repro.analysis.diagnostics.LintReport` maps to one
run of the ``repro-lint`` tool; the rule metadata comes from the registry.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.analysis.diagnostics import LintReport, Severity
from repro.analysis.registry import LINT_RULES

__all__ = ["to_sarif"]

_SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def to_sarif(report: LintReport, tool_version: str = "1.0.0") -> Dict[str, Any]:
    """Render a lint report as a SARIF 2.1.0 log (a JSON-serialisable dict)."""
    rules: List[Dict[str, Any]] = [
        {
            "id": rule.code,
            "name": rule.category,
            "shortDescription": {"text": rule.title},
            "fullDescription": {"text": rule.explanation},
            "helpUri": rule.help_uri,
            "defaultConfiguration": {"level": _SARIF_LEVELS[rule.severity]},
        }
        for rule in sorted(LINT_RULES.values(), key=lambda r: r.code)
    ]
    rule_indices = {rule["id"]: index for index, rule in enumerate(rules)}
    artifact = report.source or "<input>"
    results: List[Dict[str, Any]] = []
    for diagnostic in report.diagnostics:
        result: Dict[str, Any] = {
            "ruleId": diagnostic.code,
            "level": _SARIF_LEVELS.get(diagnostic.severity or Severity.ERROR, "error"),
            "message": {"text": diagnostic.message},
        }
        if diagnostic.code in rule_indices:
            result["ruleIndex"] = rule_indices[diagnostic.code]
        location: Dict[str, Any] = {
            "physicalLocation": {"artifactLocation": {"uri": artifact}}
        }
        line = report.line_for(diagnostic.rule_index)
        if line is not None:
            location["physicalLocation"]["region"] = {"startLine": line}
        result["locations"] = [location]
        if diagnostic.fix is not None:
            result["properties"] = {"fix": diagnostic.fix.describe()}
        results.append(result)
    return {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://github.com/aartikis/RTEC",
                        "version": tool_version,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
