"""Static analysis ("linting") of RTEC event descriptions.

A multi-pass analyser with a registry of coded lint rules
(``RTEC001``-style): binding-order dataflow, dependency/stratification
analysis, consistency checks, partitionability lints and naming fixes.
See :mod:`repro.analysis.analyzer` for the driver and
:mod:`repro.analysis.registry` for the code registry.

The package initialiser is *lazy* (PEP 562): :mod:`repro.rtec.errors`
imports :mod:`repro.analysis.diagnostics` while :mod:`repro.rtec` is still
initialising, so importing the analyser (which itself imports
:mod:`repro.rtec.description`) eagerly here would create a cycle.
"""

from typing import List

_EXPORTS = {
    "Severity": "diagnostics",
    "Fix": "diagnostics",
    "Diagnostic": "diagnostics",
    "LintReport": "diagnostics",
    "CATEGORY_CODES": "diagnostics",
    "LintRule": "registry",
    "LINT_RULES": "registry",
    "rule_for": "registry",
    "levenshtein": "names",
    "normalise": "names",
    "closest": "names",
    "BindingIssue": "binding",
    "check_rule": "binding",
    "analyse": "analyzer",
    "analyse_text": "analyzer",
    "PASSES": "analyzer",
    "apply_fixes": "fixers",
    "normalise_rename_map": "fixers",
    "to_sarif": "sarif",
    "CostModel": "costmodel",
    "condition_class": "costmodel",
    "measure_cost_model": "costmodel",
    "RepairAction": "repair",
    "RepairIteration": "repair",
    "RepairResult": "repair",
    "repair_event_description": "repair",
    "SemanticFacts": "semantics",
    "RuleFacts": "semantics",
    "analyse_semantics": "semantics",
    "semantic_pass": "semantics",
    "OptimisationResult": "optimize",
    "optimise_description": "optimize",
    "AnalysisCertificate": "certify",
    "RuleCertificate": "certify",
    "certify_description": "certify",
    "certify_text": "certify",
    "description_digest": "certify",
    "prove_rule_delta_safety": "certify",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError("module %r has no attribute %r" % (__name__, name))
    import importlib

    module = importlib.import_module("repro.analysis." + module_name)
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(__all__))
