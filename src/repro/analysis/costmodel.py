"""Measured condition-cost models for selectivity reordering.

The optimiser's Phase C (:func:`repro.analysis.optimize.optimise_description`
with ``reorder=True``) orders simple-rule bodies cheapest-first. By default
the rank of a condition comes from a static table (comparisons before
background lookups before fluent queries before stream joins). This module
replaces that heuristic with *measured* ranks: the evaluator
(:mod:`repro.rtec.simple`) counts, per condition class, how many times a
condition of that class was attempted and how many substitutions it
yielded; the ratio is the class's observed **expansion factor** — below 1
the class filters, above 1 it fans out — and ordering by it puts the most
selective conditions first for the workload that was actually profiled.

The contract with the optimiser is unchanged: reordering is subject to the
same binding-order validity constraint, so *any* rank function yields a
byte-identical recognition result (a property the test suite checks with
hypothesis-random rank tables); the cost model only changes which of the
valid orders is picked.

Classes mirror :func:`condition_class`:

========================  ====================================================
``compare``               arithmetic comparison (pure filter)
``background`` / ``.neg`` atemporal KB lookup (positive / negated)
``holdsat.ground``        fully bound ``holdsAt`` (O(1) store lookup)
``holdsat.enum``          ``holdsAt`` with unbound pattern variables
``happensat`` / ``.neg``  stream join (positive / negated)
========================  ====================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.logic.parser import Literal
from repro.logic.terms import Compound, Variable, term_variables
from repro.rtec.builtins import is_comparison

__all__ = [
    "CONDITION_CLASSES",
    "STATIC_RANKS",
    "DEFAULT_EXPANSIONS",
    "condition_class",
    "CostModel",
    "measure_cost_model",
]

#: Every condition class the evaluator can count.
CONDITION_CLASSES: Tuple[str, ...] = (
    "compare",
    "background.neg",
    "background",
    "holdsat.ground",
    "happensat.neg",
    "happensat",
    "holdsat.enum",
)

#: The static heuristic ranks (the historical ``_literal_cost`` table of
#: the optimiser), kept as the tie-break and the no-measurement fallback.
STATIC_RANKS: Dict[str, int] = {
    "compare": 0,
    "background.neg": 1,
    "background": 2,
    "holdsat.ground": 3,
    "happensat.neg": 4,
    "happensat": 5,
    "holdsat.enum": 6,
}

#: Prior expansion factors for classes the profiling run never exercised,
#: chosen to reproduce the static order on the measured scale.
DEFAULT_EXPANSIONS: Dict[str, float] = {
    "compare": 0.40,
    "background.neg": 0.60,
    "background": 0.80,
    "holdsat.ground": 0.90,
    "happensat.neg": 0.95,
    "happensat": 2.00,
    "holdsat.enum": 3.00,
}

#: Below this many attempts a class's measurement is considered noise and
#: the prior is used instead.
MIN_SAMPLES = 8


def condition_class(literal: Literal, bound: Set[Variable]) -> str:
    """The cost class of one body condition given the bound variables."""
    term = literal.term
    if is_comparison(term):
        return "compare"
    if isinstance(term, Compound) and term.functor == "holdsAt" and term.arity == 2:
        if set(term_variables(term)) <= bound:
            return "holdsat.ground"
        return "holdsat.enum"
    if isinstance(term, Compound) and term.functor == "happensAt" and term.arity == 2:
        return "happensat.neg" if literal.negated else "happensat"
    return "background.neg" if literal.negated else "background"


@dataclass(frozen=True)
class CostModel:
    """Per-class measured ranks plus the raw samples they came from.

    ``ranks`` maps condition class to its rank (lower = earlier);
    ``samples`` maps class to ``(attempts, solutions)``; ``rule_seconds``
    maps rendered rule heads to their measured evaluation time (reporting
    only — body order within a rule is driven by the class ranks).
    """

    ranks: Dict[str, float] = field(default_factory=dict)
    samples: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    rule_seconds: Dict[str, float] = field(default_factory=dict)
    source: str = ""

    def rank(self, cls: str) -> float:
        value = self.ranks.get(cls)
        if value is None:
            return float(DEFAULT_EXPANSIONS.get(cls, STATIC_RANKS.get(cls, 99)))
        return value

    def key(self) -> Tuple[Tuple[str, float], ...]:
        """A hashable digest (cache key for optimised engine clones)."""
        return tuple(sorted(self.ranks.items()))

    def describe(self) -> str:
        parts = []
        for cls in CONDITION_CLASSES:
            attempts, solutions = self.samples.get(cls, (0, 0))
            parts.append(
                "%s=%.3f (%d/%d)" % (cls, self.rank(cls), solutions, attempts)
            )
        return ", ".join(parts)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ranks": dict(self.ranks),
            "samples": {cls: list(pair) for cls, pair in self.samples.items()},
            "rule_seconds": dict(self.rule_seconds),
            "source": self.source,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CostModel":
        return cls(
            ranks={str(k): float(v) for k, v in data.get("ranks", {}).items()},
            samples={
                str(k): (int(v[0]), int(v[1]))
                for k, v in data.get("samples", {}).items()
            },
            rule_seconds={
                str(k): float(v) for k, v in data.get("rule_seconds", {}).items()
            },
            source=str(data.get("source", "")),
        )

    @classmethod
    def from_report(cls, report, source: str = "") -> "CostModel":
        """Build a model from a :class:`~repro.telemetry.report.TelemetryReport`.

        Sums the ``cond.<class>.eval`` / ``cond.<class>.sol`` counters the
        evaluator emits (see :mod:`repro.rtec.simple`) across the whole
        span forest; classes with fewer than :data:`MIN_SAMPLES` attempts
        keep their prior. Per-rule wall-clock comes from the ``rtec.rule``
        spans' ``head`` attribute.
        """
        totals: Dict[str, int] = {}
        rule_seconds: Dict[str, float] = {}

        def visit(span) -> None:
            for name, value in span.counters.items():
                if name.startswith("cond."):
                    totals[name] = totals.get(name, 0) + value
            if span.name == "rtec.rule":
                head = span.attrs.get("head")
                if head is not None:
                    rule_seconds[head] = rule_seconds.get(head, 0.0) + (
                        span.duration or 0.0
                    )
            for child in span.children:
                visit(child)

        for root in report.roots:
            visit(root)

        ranks: Dict[str, float] = {}
        samples: Dict[str, Tuple[int, int]] = {}
        for klass in CONDITION_CLASSES:
            attempts = totals.get("cond.%s.eval" % klass, 0)
            solutions = totals.get("cond.%s.sol" % klass, 0)
            if attempts:
                samples[klass] = (attempts, solutions)
            if attempts >= MIN_SAMPLES:
                ranks[klass] = solutions / attempts
        return cls(
            ranks=ranks, samples=samples, rule_seconds=rule_seconds, source=source
        )


def measure_cost_model(engine, stream, input_fluents=None, source: str = "profiled", **recognise_kwargs) -> CostModel:
    """Profile one recognition run and return the measured cost model.

    Runs ``engine.recognise(stream, input_fluents, **recognise_kwargs)``
    under a private tracer (any ambient tracer is restored afterwards) and
    feeds the per-rule spans and condition-class counters into
    :meth:`CostModel.from_report`. The profiling run is *unoptimised* by
    construction — it measures the description as written, and the model
    then drives the reordering of the optimised clone.
    """
    from repro import telemetry

    with telemetry.enabled() as tracer:
        engine.recognise(stream, input_fluents, **recognise_kwargs)
    return CostModel.from_report(tracer.report(), source=source)
