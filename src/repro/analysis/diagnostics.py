"""The diagnostic currency of the static analyser.

Every problem the analyser (and the legacy ``EventDescription.validate``)
can report is a :class:`Diagnostic`: a category (a stable kebab-case name),
a lint code (``RTEC001``-style), a severity, a message, and an optional
span (rule index, condition index) plus an optional machine-applicable
:class:`Fix`.

This module is a *leaf*: it must not import anything from :mod:`repro`,
because :mod:`repro.rtec.errors` aliases its legacy ``ValidationIssue``
type to :class:`Diagnostic` and is imported very early in the package
initialisation order.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Severity",
    "Fix",
    "Diagnostic",
    "LintReport",
    "CATEGORY_CODES",
]


class Severity(IntEnum):
    """Diagnostic severity; comparable (``ERROR`` > ``WARNING`` > ``INFO``)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()


#: category -> (code, default severity). The single source of truth tying
#: the legacy ``validate`` categories and the analyser's new passes to the
#: coded lint registry (:mod:`repro.analysis.registry` adds titles and the
#: paper's error-taxonomy mapping on top of this table).
CATEGORY_CODES: Dict[str, Tuple[str, Severity]] = {
    "syntax": ("RTEC001", Severity.ERROR),
    "malformed-rule": ("RTEC002", Severity.ERROR),
    "undefined-event": ("RTEC003", Severity.ERROR),
    "undefined-fluent": ("RTEC004", Severity.ERROR),
    "undefined-background": ("RTEC005", Severity.ERROR),
    "cycle": ("RTEC006", Severity.ERROR),
    "unbound-variable": ("RTEC007", Severity.ERROR),
    "unsafe-head": ("RTEC008", Severity.ERROR),
    "wrong-arity": ("RTEC009", Severity.ERROR),
    "never-terminated": ("RTEC010", Severity.WARNING),
    "never-initiated": ("RTEC011", Severity.WARNING),
    "dead-rule": ("RTEC012", Severity.WARNING),
    "duplicate-rule": ("RTEC013", Severity.WARNING),
    "contradictory-rules": ("RTEC014", Severity.WARNING),
    "non-shardable": ("RTEC015", Severity.INFO),
    "naming": ("RTEC016", Severity.WARNING),
    # Semantic abstract-interpretation layer (repro.analysis.semantics).
    "sort-clash": ("RTEC017", Severity.WARNING),
    "impossible-value": ("RTEC018", Severity.WARNING),
    "contradictory-conditions": ("RTEC019", Severity.WARNING),
    "constant-comparison": ("RTEC020", Severity.WARNING),
    "subsumed-condition": ("RTEC021", Severity.WARNING),
    "unreachable-fluent": ("RTEC022", Severity.WARNING),
    "unreachable-output": ("RTEC023", Severity.WARNING),
    "dead-termination": ("RTEC024", Severity.WARNING),
    # Certification layer (repro.analysis.certify).
    "delta-unsafe-condition": ("RTEC025", Severity.WARNING),
    "delta-unsafe-head": ("RTEC026", Severity.WARNING),
    "leaky-fluent": ("RTEC027", Severity.WARNING),
    "leaky-interval-flow": ("RTEC028", Severity.WARNING),
    "costly-rule": ("RTEC029", Severity.INFO),
    "uncertifiable": ("RTEC030", Severity.ERROR),
}

#: Fallback for categories outside the table (kept permissive so ad-hoc
#: diagnostics constructed by callers never crash).
_UNKNOWN = ("RTEC000", Severity.ERROR)


@dataclass(frozen=True)
class Fix:
    """A machine-applicable repair attached to a diagnostic.

    ``kind`` is one of ``"rename-functor"``/``"rename-constant"`` (``old``
    and ``new`` are the names), ``"drop-condition"`` (``old`` is the
    rendered condition, ``new`` is empty; the span's rule/condition indices
    locate it) or ``"remove-rule"`` (``old`` is the rendered rule head,
    ``new`` is empty). :mod:`repro.analysis.fixers` applies fixes to rule
    sets; :mod:`repro.generation.correction` uses them as auto-fix
    candidates.
    """

    kind: str
    old: str
    new: str

    def describe(self) -> str:
        return "%s %r -> %r" % (self.kind.replace("-", " "), self.old, self.new)


@dataclass(frozen=True)
class Diagnostic:
    """One problem found in an event description.

    Constructible exactly like the legacy ``ValidationIssue`` —
    ``Diagnostic(category, message, rule_index)`` — with ``code`` and
    ``severity`` derived from the category when not given explicitly.
    """

    category: str
    message: str
    rule_index: Optional[int] = None
    condition_index: Optional[int] = None
    code: str = ""
    severity: Optional[Severity] = None
    fix: Optional[Fix] = None

    def __post_init__(self) -> None:
        default_code, default_severity = CATEGORY_CODES.get(self.category, _UNKNOWN)
        if not self.code:
            object.__setattr__(self, "code", default_code)
        if self.severity is None:
            object.__setattr__(self, "severity", default_severity)

    @property
    def span(self) -> Tuple[Optional[int], Optional[int]]:
        """(rule index, condition index) — either may be unknown."""
        return (self.rule_index, self.condition_index)

    def __str__(self) -> str:
        where = ""
        if self.rule_index is not None:
            where = "rule %d" % self.rule_index
            if self.condition_index is not None:
                where += ", condition %d" % self.condition_index
            where += ": "
        return "[%s %s] %s%s" % (self.code, self.category, where, self.message)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "code": self.code,
            "category": self.category,
            "severity": str(self.severity),
            "message": self.message,
            "rule_index": self.rule_index,
            "condition_index": self.condition_index,
        }
        if self.fix is not None:
            data["fix"] = {"kind": self.fix.kind, "old": self.fix.old, "new": self.fix.new}
        return data


@dataclass
class LintReport:
    """The result of one analyser run over an event description.

    ``rule_lines`` maps rule index -> 1-based source line (when the source
    text was available); ``source`` is a display label such as a file path
    or ``"<gold:maritime>"``.
    """

    diagnostics: List[Diagnostic] = field(default_factory=list)
    source: Optional[str] = None
    rule_lines: Optional[Sequence[int]] = None

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    @property
    def infos(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.INFO]

    @property
    def has_errors(self) -> bool:
        return any(d.severity == Severity.ERROR for d in self.diagnostics)

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def at_or_above(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= severity]

    def line_for(self, rule_index: Optional[int]) -> Optional[int]:
        """The 1-based source line of a rule, when known."""
        if (
            rule_index is None
            or self.rule_lines is None
            or rule_index >= len(self.rule_lines)
        ):
            return None
        return self.rule_lines[rule_index]

    def summary(self) -> str:
        return "%d error(s), %d warning(s), %d info(s)" % (
            len(self.errors),
            len(self.warnings),
            len(self.infos),
        )

    def format_text(self) -> str:
        """Human-readable listing, one diagnostic per line plus a summary."""
        lines: List[str] = []
        for diagnostic in self.diagnostics:
            location = ""
            line = self.line_for(diagnostic.rule_index)
            if line is not None:
                location = "%s:%d: " % (self.source or "<input>", line)
            elif self.source:
                location = "%s: " % self.source
            lines.append("%s%-7s %s" % (location, str(diagnostic.severity), diagnostic))
            if diagnostic.fix is not None:
                lines.append("        fix: %s" % diagnostic.fix.describe())
        lines.append(self.summary())
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "infos": len(self.infos),
            },
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)
