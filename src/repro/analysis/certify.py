"""Whole-description certification: static properties the runtime can trust.

The serving tiers depend on three properties that were previously discovered
at run time, per window, or not at all:

* **delta safety** — whether every simple-fluent rule's firing points after
  a window boundary depend only on input newer than the boundary, the
  soundness condition of incremental (delta) window evaluation
  (:meth:`repro.rtec.engine.RTECEngine._process_window_delta`);
* **memory boundedness** — whether every fluent's carried state (open
  initiations, cached maximal intervals) stays bounded across windows, the
  condition for hosting a session indefinitely without eviction pressure;
* **static cost** — a per-rule estimate of evaluation cost, usable as a
  placement weight before any telemetry exists.

:func:`certify_description` composes the existing passes (structural
analysis, binding dataflow, value-interval semantics, reachability) with
three new interprocedural analyses proving these properties, and emits a
signed, JSON-serialisable :class:`AnalysisCertificate` bound to the
description's content hash. Consumers: ``RTECEngine``/``RTECSession``
(delta-path gating), ``repro.serve`` session admission, and
``repro.serve.cluster`` placement.

Delta-safety prover
-------------------
:func:`prove_rule_delta_safety` generalises
:func:`repro.rtec.compile.rule_time_anchored` with *time-variable equality
classes*: a union-find over the rule's variables, seeded by every positive
``=:=`` comparison between two variables. A rule is certified delta-safe
when its head time is a variable in the same class as the seed occurrence
time and every other temporal condition's time term sits in that class.
This is sound because the delta stream contains *all* buffered events
strictly after the previous query time ``b``: a firing at head time
``T > b`` only consults events at times provably equal to ``T`` (hence
``> b``, hence in the delta) and fluent values from the repaired store,
which is exact over the whole window. Conversely a temporal condition at a
time *not* provably equal to the head time can pair an old seed event with
new input (or vice versa), which the delta pass never re-examines — so
such rules are reported (RTEC025/RTEC026) and sessions fall back to
full-window recomputation.

Memory-boundedness analysis
---------------------------
For every *reachable* initiated value ``v`` of a simple fluent, a
termination mechanism must exist: a live ``terminatedAt`` rule whose head
value covers ``v``, a matching ``maxDuration`` deadline, or another
reachable initiated value (RTEC value exclusivity: initiating ``F=V'``
terminates ``F=V``). Unlike the syntactic RTEC010 check this is
reachability- and liveness-aware: a termination rule that can never fire
(contradictory comparisons, impossible value references, dead
terminations) does not count, and an alternative value only counts when it
is actually derivable from the inputs. Fluents failing the check are
*leaky* (RTEC027); leakiness then propagates through the interval algebra
of statically determined fluents by abstract interpretation (RTEC028):
``union_all`` is leaky when any input is, ``intersect_all`` only when all
inputs are, ``relative_complement_all`` follows its first operand.

Static cost model
-----------------
Per rule, the body is walked left-to-right evolving the bound-variable set;
each condition's class (:func:`repro.analysis.costmodel.condition_class`)
contributes the class's default expansion factor, and the rule cost is the
total number of partial solutions flowing through the body. Rules whose
temporal conditions are unanchored additionally scan the whole window
(cost scales with omega, not with the delta) and get a window-sensitivity
multiplier; rules joining several entity variables get a multiplicity
factor. The per-fluent sums are emitted as machine-readable weights
(``fluent_costs`` / ``total_cost``) consumed by cluster placement.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.costmodel import DEFAULT_EXPANSIONS, condition_class
from repro.analysis.diagnostics import Diagnostic, LintReport, Severity
from repro.logic.knowledge import KnowledgeBase
from repro.logic.parser import LIST_FUNCTOR, ParseError, Rule, clause_lines
from repro.logic.pretty import term_to_str
from repro.logic.terms import Compound, Term, Variable, is_ground, term_variables
from repro.logic.unification import unify
from repro.rtec.description import (
    INTERVAL_CONSTRUCTS,
    EventDescription,
    FluentKey,
    Vocabulary,
    fluent_key,
    head_fvp,
)
from repro.rtec.errors import EvaluationError

__all__ = [
    "AnalysisCertificate",
    "RuleCertificate",
    "certify_description",
    "certify_text",
    "description_digest",
    "prove_rule_delta_safety",
]

#: Cost multiplier for rules whose temporal conditions scan the whole
#: window instead of a single anchored time-point.
WINDOW_SENSITIVITY_MULTIPLIER = 4.0

#: Rule-cost threshold above which an informational RTEC029 is emitted.
COSTLY_RULE_THRESHOLD = 32.0

#: Number of enumerating stream joins that makes a rule "costly" outright.
COSTLY_JOIN_COUNT = 3

#: Marker for an initiated value the analysis cannot enumerate (a rule head
#: with a variable value: the domain is open).
_OPEN_VALUE = "*"

_SEVERITIES: Dict[str, Severity] = {str(severity): severity for severity in Severity}


def description_digest(description: EventDescription) -> str:
    """Content hash binding a certificate to one event description.

    The same digest the serve tier's checkpoints use
    (:func:`repro.serve.checkpoint.description_hash`), duplicated here so
    the analysis layer stays import-independent of the serving layer.
    """
    return hashlib.sha256(description.to_text().encode()).hexdigest()


# ---------------------------------------------------------------------------
# Delta-safety prover
# ---------------------------------------------------------------------------


class _TimeClasses:
    """Union-find over a rule's variables, seeded by positive ``=:=``."""

    def __init__(self, rule: Rule) -> None:
        self._parent: Dict[Variable, Variable] = {}
        for literal in rule.body:
            term = literal.term
            if (
                not literal.negated
                and isinstance(term, Compound)
                and term.functor == "=:="
                and term.arity == 2
            ):
                left, right = term.args
                if isinstance(left, Variable) and isinstance(right, Variable):
                    self._union(left, right)

    def _find(self, variable: Variable) -> Variable:
        parent = self._parent
        root = variable
        while parent.get(root, root) is not root:
            root = parent[root]
        while parent.get(variable, variable) is not variable:
            parent[variable], variable = root, parent[variable]
        return root

    def _union(self, left: Variable, right: Variable) -> None:
        root_left, root_right = self._find(left), self._find(right)
        if root_left is not root_right:
            self._parent[root_left] = root_right

    def same(self, left: Term, right: Term) -> bool:
        if not isinstance(left, Variable) or not isinstance(right, Variable):
            return False
        return left == right or self._find(left) == self._find(right)


@dataclass(frozen=True)
class _DeltaProblem:
    """One reason a rule is not delta-safe."""

    #: ``"delta-unsafe-head"`` (RTEC026) or ``"delta-unsafe-condition"`` (RTEC025).
    category: str
    message: str
    condition_index: Optional[int] = None


def prove_rule_delta_safety(rule: Rule) -> Tuple[bool, List[_DeltaProblem]]:
    """Certify one ``initiatedAt``/``terminatedAt`` rule as delta-safe.

    Returns ``(safe, problems)``; ``problems`` is empty exactly when the
    rule is safe. See the module docstring for the soundness argument; the
    baseline :func:`repro.rtec.compile.rule_time_anchored` accepts only
    rules whose conditions reuse the head time variable verbatim, while
    this prover also accepts times provably equal to it through positive
    ``=:=`` chains.
    """
    from repro.rtec.compile import compile_rule

    try:
        plan = compile_rule(rule)
    except EvaluationError as exc:
        return False, [
            _DeltaProblem(
                "delta-unsafe-head",
                "rule %s does not compile (%s): its window advances cannot "
                "be classified, forcing full recomputation"
                % (term_to_str(rule.head), exc),
            )
        ]
    problems: List[_DeltaProblem] = []
    head_time = plan.head_time
    classes = _TimeClasses(rule)
    if not isinstance(head_time, Variable):
        problems.append(
            _DeltaProblem(
                "delta-unsafe-head",
                "head time %s of rule %s is not a variable: the rule pins "
                "its firings to a fixed time-point, which incremental "
                "evaluation cannot bound" % (term_to_str(head_time), term_to_str(rule.head)),
            )
        )
        return False, problems
    if not classes.same(plan.seed_time, head_time):
        problems.append(
            _DeltaProblem(
                "delta-unsafe-head",
                "seed occurrence time %s of rule %s is not provably equal "
                "to the head time %s; add %s =:= %s (or reuse the head time "
                "variable) so delta evaluation can re-seed the rule from "
                "new events only"
                % (
                    term_to_str(plan.seed_time),
                    term_to_str(rule.head),
                    head_time.name,
                    term_to_str(plan.seed_time),
                    head_time.name,
                ),
                condition_index=0,
            )
        )
    for index, literal in enumerate(rule.body):
        if index == 0:
            continue
        term = literal.term
        if not (
            isinstance(term, Compound)
            and term.functor in ("happensAt", "holdsAt")
            and term.arity == 2
        ):
            continue
        time_term = term.args[1]
        if classes.same(time_term, head_time):
            continue
        if isinstance(time_term, Variable):
            suggestion = (
                "anchor it at the head time (reuse %s, or add %s =:= %s)"
                % (head_time.name, time_term.name, head_time.name)
            )
        else:
            suggestion = "replace the fixed time %s with the head time %s" % (
                term_to_str(time_term),
                head_time.name,
            )
        problems.append(
            _DeltaProblem(
                "delta-unsafe-condition",
                "condition %s of rule %s is not anchored at the head time "
                "%s: under incremental evaluation it can reach back before "
                "the previous query time, where events have left the delta "
                "stream; %s"
                % (
                    term_to_str(term),
                    term_to_str(rule.head),
                    head_time.name,
                    suggestion,
                ),
                condition_index=index,
            )
        )
    return not problems, problems


# ---------------------------------------------------------------------------
# The certificate
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RuleCertificate:
    """The certified static properties of one defining rule."""

    #: Index into ``description.rules`` (None when the rule is not listed).
    rule_index: Optional[int]
    #: ``"name/arity"`` of the defined fluent.
    fluent: str
    #: ``"initiatedAt"`` / ``"terminatedAt"`` / ``"holdsFor"``.
    kind: str
    #: Rendered rule head, for human-readable reports.
    head: str
    delta_safe: bool
    #: Static cost estimate (partial solutions flowing through the body,
    #: window-sensitivity and entity-multiplicity factors applied).
    cost: float
    #: The rule's cost scales with the window extent, not the delta.
    window_sensitive: bool
    #: Entity variables joining at least two stream occurrences.
    entity_variables: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule_index": self.rule_index,
            "fluent": self.fluent,
            "kind": self.kind,
            "head": self.head,
            "delta_safe": self.delta_safe,
            "cost": self.cost,
            "window_sensitive": self.window_sensitive,
            "entity_variables": self.entity_variables,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RuleCertificate":
        return cls(
            rule_index=data.get("rule_index"),
            fluent=str(data["fluent"]),
            kind=str(data["kind"]),
            head=str(data["head"]),
            delta_safe=bool(data["delta_safe"]),
            cost=float(data["cost"]),
            window_sensitive=bool(data["window_sensitive"]),
            entity_variables=int(data["entity_variables"]),
        )


@dataclass
class AnalysisCertificate:
    """The signed result of certifying one event description.

    ``diagnostics`` carries only the certification layer's codes
    (RTEC025–RTEC030); the base analyser's findings gate certification
    (``certified``) but are reported by ``repro lint``, not duplicated
    here. The ``signature`` is a SHA-256 over the canonical JSON payload —
    tamper-evidence for certificates persisted next to checkpoints, not a
    cryptographic authenticity claim.
    """

    description_hash: str
    #: The base analysis found no error-severity diagnostics and every
    #: certification pass ran to completion.
    certified: bool
    #: Every simple-fluent rule is provably safe for delta evaluation.
    delta_safe: bool
    #: Every reachable initiated value has a termination mechanism and no
    #: static fluent inherits unbounded intervals.
    memory_bounded: bool
    #: ``"name/arity=value"`` descriptors of the leaky fluent values.
    leaky_fluents: Tuple[str, ...] = ()
    rules: Tuple[RuleCertificate, ...] = ()
    #: Per-fluent static cost weights, keyed ``"name/arity"``.
    fluent_costs: Dict[str, float] = field(default_factory=dict)
    total_cost: float = 0.0
    diagnostics: Tuple[Diagnostic, ...] = ()
    signature: str = ""

    # -- integrity ---------------------------------------------------------

    def payload(self) -> Dict[str, Any]:
        """Everything the signature covers, as a JSON-able dict."""
        return {
            "description_hash": self.description_hash,
            "certified": self.certified,
            "delta_safe": self.delta_safe,
            "memory_bounded": self.memory_bounded,
            "leaky_fluents": list(self.leaky_fluents),
            "rules": [rule.to_dict() for rule in self.rules],
            "fluent_costs": dict(sorted(self.fluent_costs.items())),
            "total_cost": self.total_cost,
            "diagnostics": [diagnostic.to_dict() for diagnostic in self.diagnostics],
        }

    def compute_signature(self) -> str:
        canonical = json.dumps(self.payload(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def sign(self) -> "AnalysisCertificate":
        self.signature = self.compute_signature()
        return self

    def verify(self, description: Optional[EventDescription] = None) -> bool:
        """Whether the signature matches the payload (and, when given, the
        certificate was issued for exactly ``description``)."""
        if self.signature != self.compute_signature():
            return False
        if description is not None:
            return self.description_hash == description_digest(description)
        return True

    # -- consumption -------------------------------------------------------

    @property
    def placement_weight(self) -> float:
        """The description's static cost as a load weight (always > 0, so
        weighted placement degenerates to session counting when every
        session runs the same description)."""
        return self.total_cost if self.total_cost > 0 else 1.0

    def delta_messages(self) -> List[str]:
        """Why delta evaluation is unsafe, one message per unsafe rule;
        empty exactly when ``delta_safe`` (the
        ``RTECEngine.delta_diagnostics`` contract)."""
        return [
            "%s: rule %s is not delta-safe (a temporal condition can reach "
            "back before the previous query time)" % (rule.fluent, rule.head)
            for rule in self.rules
            if not rule.delta_safe
        ]

    def report(
        self,
        source: Optional[str] = None,
        rule_lines: Optional[Sequence[int]] = None,
    ) -> LintReport:
        """The certification diagnostics as a lint report (text/JSON/SARIF)."""
        return LintReport(list(self.diagnostics), source=source, rule_lines=rule_lines)

    def summary(self) -> str:
        verdicts = [
            "certified" if self.certified else "NOT certified",
            "delta-safe" if self.delta_safe else "delta-UNSAFE",
            "memory-bounded" if self.memory_bounded else "LEAKY",
        ]
        return "%s | rules: %d | total cost: %.2f" % (
            ", ".join(verdicts),
            len(self.rules),
            self.total_cost,
        )

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data = self.payload()
        data["signature"] = self.signature
        return data

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AnalysisCertificate":
        diagnostics = tuple(
            Diagnostic(
                category=str(entry["category"]),
                message=str(entry["message"]),
                rule_index=entry.get("rule_index"),
                condition_index=entry.get("condition_index"),
                code=str(entry.get("code", "")),
                severity=_SEVERITIES.get(str(entry.get("severity", ""))),
            )
            for entry in data.get("diagnostics", [])
        )
        return cls(
            description_hash=str(data["description_hash"]),
            certified=bool(data["certified"]),
            delta_safe=bool(data["delta_safe"]),
            memory_bounded=bool(data["memory_bounded"]),
            leaky_fluents=tuple(str(item) for item in data.get("leaky_fluents", [])),
            rules=tuple(
                RuleCertificate.from_dict(entry) for entry in data.get("rules", [])
            ),
            fluent_costs={
                str(key): float(value)
                for key, value in data.get("fluent_costs", {}).items()
            },
            total_cost=float(data.get("total_cost", 0.0)),
            diagnostics=diagnostics,
            signature=str(data.get("signature", "")),
        )

    @classmethod
    def from_json(cls, text: str) -> "AnalysisCertificate":
        return cls.from_dict(json.loads(text))


# ---------------------------------------------------------------------------
# Memory-boundedness analysis
# ---------------------------------------------------------------------------


def _key_name(key: FluentKey) -> str:
    return "%s/%d" % key


def _value_name(value: Optional[Term]) -> str:
    return _OPEN_VALUE if value is None else term_to_str(value)


def _value_matches(pattern: Term, value: Optional[Term]) -> bool:
    """Whether a termination/maxDuration value pattern covers ``value``
    (``None`` = an open initiated value: only a variable pattern covers it)."""
    if not is_ground(pattern):
        return True
    if value is None:
        return False
    return unify(pattern, value) is not None


def _reachable_value(
    reach: Optional[Set[Term]], value: Optional[Term]
) -> bool:
    """Whether an initiated value is reachable under the per-key value set
    (``None`` set = open domain: everything reachable)."""
    if reach is None:
        return True
    if not reach:
        return False
    if value is None or not is_ground(value):
        return True
    return value in reach


def _memory_analysis(
    description: EventDescription,
    reachable: Mapping[FluentKey, Optional[Set[Term]]],
    dead_rules: Set[int],
    diagnostics: List[Diagnostic],
) -> Dict[FluentKey, Set[str]]:
    """RTEC027: leaky simple-fluent values, keyed by fluent key.

    The returned sets hold rendered value names (``"*"`` for open values);
    a non-empty map means the description is not memory-bounded.
    """
    rule_index_of = {id(rule): index for index, rule in enumerate(description.rules)}
    leaky: Dict[FluentKey, Set[str]] = {}

    max_durations: Dict[FluentKey, List[Term]] = {}
    for pattern, _duration in description.max_durations:
        if isinstance(pattern, Compound) and pattern.arity == 2:
            try:
                max_durations.setdefault(
                    fluent_key(pattern.args[0]), []
                ).append(pattern.args[1])
            except ValueError:
                continue

    initially_values: Dict[FluentKey, List[Term]] = {}
    for pair in description.initial_fvps:
        if isinstance(pair, Compound) and pair.arity == 2:
            try:
                initially_values.setdefault(
                    fluent_key(pair.args[0]), []
                ).append(pair.args[1])
            except ValueError:
                continue

    for key, definition in sorted(description.simple_fluents.items()):
        reach = reachable.get(key)
        if reach is not None and not reach:
            continue  # unreachable fluent: RTEC022 territory, nothing leaks

        # Live initiations: (value or None for open, anchoring rule index).
        initiated: List[Tuple[Optional[Term], Optional[int]]] = []
        for rule in definition.initiated_rules:
            index = rule_index_of.get(id(rule))
            if index is not None and index in dead_rules:
                continue
            try:
                _fluent, value = head_fvp(rule)
            except ValueError:
                continue
            initiated.append((value if is_ground(value) else None, index))
        for value in initially_values.get(key, []):
            initiated.append((value if is_ground(value) else None, None))

        live_terminated_values: List[Term] = []
        for rule in definition.terminated_rules:
            index = rule_index_of.get(id(rule))
            if index is not None and index in dead_rules:
                continue
            try:
                _fluent, value = head_fvp(rule)
            except ValueError:
                continue
            live_terminated_values.append(value)

        exclusivity_pool = {
            value
            for value, _index in initiated
            if value is not None and _reachable_value(reach, value)
        }

        for value, anchor_index in initiated:
            if not _reachable_value(reach, value):
                continue
            name = _value_name(value)
            if name in leaky.get(key, set()):
                continue
            if any(_value_matches(tv, value) for tv in live_terminated_values):
                continue
            if any(_value_matches(dv, value) for dv in max_durations.get(key, [])):
                continue
            if value is not None and any(
                other != value for other in exclusivity_pool
            ):
                continue  # value exclusivity displaces it
            leaky.setdefault(key, set()).add(name)
            diagnostics.append(
                Diagnostic(
                    "leaky-fluent",
                    "simple fluent %s=%s has no live termination mechanism: "
                    "no reachable terminatedAt rule covers the value, no "
                    "maxDuration deadline applies, and no other reachable "
                    "value can displace it — once initiated its state is "
                    "carried across windows forever"
                    % (_key_name(key), name),
                    rule_index=anchor_index,
                )
            )
    return leaky


def _fluent_value_leaky(
    key: FluentKey, value: Term, leaky: Mapping[FluentKey, Set[str]]
) -> bool:
    names = leaky.get(key)
    if not names:
        return False
    if _OPEN_VALUE in names:
        return True
    if is_ground(value):
        return term_to_str(value) in names
    return True  # a variable value can bind to any leaky instance


def _propagate_leaks(
    description: EventDescription,
    leaky: Dict[FluentKey, Set[str]],
    diagnostics: List[Diagnostic],
) -> None:
    """RTEC028: abstract interpretation of the interval operators.

    Walks the statically determined fluents bottom-up (the dependency
    order certification already validated) propagating a one-bit "leaky"
    abstract value through interval variables.
    """
    rule_index_of = {id(rule): index for index, rule in enumerate(description.rules)}
    try:
        order = description.topological_order()
    except Exception:  # pragma: no cover - cycles are base-analysis errors
        order = list(description.static_fluents)
    for key in order:
        definition = description.static_fluents.get(key)
        if definition is None:
            continue
        for rule in definition.rules:
            env: Dict[Variable, bool] = {}
            sources: Dict[Variable, str] = {}

            def _list_inputs(term: Term) -> List[Variable]:
                if isinstance(term, Compound) and term.functor == LIST_FUNCTOR:
                    return [arg for arg in term.args if isinstance(arg, Variable)]
                return []

            for literal in rule.body:
                term = literal.term
                if not isinstance(term, Compound):
                    continue
                if term.functor == "holdsFor" and term.arity == 2:
                    pair, out = term.args
                    if not (isinstance(out, Variable) and isinstance(pair, Compound)):
                        continue
                    if pair.functor != "=" or pair.arity != 2:
                        continue
                    try:
                        cond_key = fluent_key(pair.args[0])
                    except ValueError:
                        continue
                    if _fluent_value_leaky(cond_key, pair.args[1], leaky):
                        env[out] = True
                        sources[out] = _key_name(cond_key)
                elif term.functor in INTERVAL_CONSTRUCTS:
                    out_term = term.args[-1]
                    if not isinstance(out_term, Variable):
                        continue
                    if term.functor == "union_all":
                        inputs = _list_inputs(term.args[0])
                        flows = any(env.get(var, False) for var in inputs)
                    elif term.functor == "intersect_all":
                        inputs = _list_inputs(term.args[0])
                        flows = bool(inputs) and all(
                            env.get(var, False) for var in inputs
                        )
                    else:  # relative_complement_all(I', L, I)
                        base = term.args[0]
                        inputs = [base] if isinstance(base, Variable) else []
                        flows = any(env.get(var, False) for var in inputs)
                    if flows:
                        env[out_term] = True
                        for var in inputs:
                            if env.get(var, False) and var in sources:
                                sources[out_term] = sources[var]
                                break
            head = rule.head
            if not (isinstance(head, Compound) and head.arity == 2):
                continue
            head_interval = head.args[1]
            if isinstance(head_interval, Variable) and env.get(head_interval, False):
                try:
                    _fluent, head_value = head_fvp(rule)
                except ValueError:
                    head_value = None
                name = _value_name(
                    head_value if head_value is not None and is_ground(head_value) else None
                )
                if name in leaky.get(key, set()):
                    continue
                leaky.setdefault(key, set()).add(name)
                diagnostics.append(
                    Diagnostic(
                        "leaky-interval-flow",
                        "statically determined fluent %s=%s derives its "
                        "intervals from leaky fluent %s: its cached state "
                        "inherits the unbounded growth"
                        % (
                            _key_name(key),
                            name,
                            sources.get(head_interval, "an upstream fluent"),
                        ),
                        rule_index=rule_index_of.get(id(rule)),
                    )
                )


# ---------------------------------------------------------------------------
# Static cost model
# ---------------------------------------------------------------------------

#: Expansion factors of holdsFor-body condition shapes (the simple-rule
#: shapes reuse :data:`repro.analysis.costmodel.DEFAULT_EXPANSIONS`).
_STATIC_GROUND_EXPANSION = DEFAULT_EXPANSIONS["holdsat.ground"]
_STATIC_ENUM_EXPANSION = DEFAULT_EXPANSIONS["holdsat.enum"]
_STATIC_BACKGROUND_EXPANSION = DEFAULT_EXPANSIONS["background"]


def _entity_variable_count(rule: Rule) -> int:
    from repro.rtec.partition import _entity_vars_of, _stream_occurrences

    occurrences, problem = _stream_occurrences(rule)
    if occurrences is None or problem is not None:
        return 0
    return len(_entity_vars_of(occurrences))


def _simple_rule_cost(rule: Rule, window_sensitive: bool) -> Tuple[float, int]:
    """(cost, enumerating stream joins) of one initiated/terminated rule."""
    bound: Set[Variable] = set(term_variables(rule.body[0].term))
    size = 1.0
    total = 1.0  # the seed scan itself
    joins = 0
    for literal in rule.body[1:]:
        cls = condition_class(literal, bound)
        total += size
        size *= DEFAULT_EXPANSIONS.get(cls, 1.0)
        if cls in ("happensat", "holdsat.enum"):
            joins += 1
        if not literal.negated:
            bound |= set(term_variables(literal.term))
    if window_sensitive:
        total *= WINDOW_SENSITIVITY_MULTIPLIER
    total *= max(1.0, float(_entity_variable_count(rule)))
    return total, joins


def _static_rule_cost(rule: Rule) -> float:
    bound: Set[Variable] = set()
    size = 1.0
    total = 0.0
    for literal in rule.body:
        term = literal.term
        total += size
        if isinstance(term, Compound) and term.functor == "holdsFor" and term.arity == 2:
            entity_vars = set(term_variables(term.args[0]))
            if entity_vars - bound:
                size *= _STATIC_ENUM_EXPANSION  # seed-pass enumeration
            else:
                size *= _STATIC_GROUND_EXPANSION  # entity already bound: lookup
            bound |= entity_vars
        elif isinstance(term, Compound) and term.functor in INTERVAL_CONSTRUCTS:
            pass  # linear sweep over already-bound interval lists
        else:
            size *= _STATIC_BACKGROUND_EXPANSION
            bound |= set(term_variables(term))
    total *= max(1.0, float(_entity_variable_count(rule)))
    return total


# ---------------------------------------------------------------------------
# The driver
# ---------------------------------------------------------------------------


def certify_description(
    description: EventDescription,
    vocabulary: Optional[Vocabulary] = None,
    kb: Optional[KnowledgeBase] = None,
    outputs: Optional[Sequence[str]] = None,
) -> AnalysisCertificate:
    """Certify ``description``; always returns a (signed) certificate.

    A description whose base analysis reports error-severity diagnostics
    (syntax, malformed rules, unbound variables, cycles, ...) is
    *uncertifiable*: the certificate carries a single RTEC030 and claims
    none of the three properties. ``vocabulary`` sharpens the
    memory-boundedness analysis with input-reachability (without it the
    analysis falls back to the producible-value domains).
    """
    from repro.analysis.analyzer import analyse
    from repro.analysis.semantics import analyse_semantics

    digest = description_digest(description)
    base = analyse(description, vocabulary, kb=kb, outputs=outputs)
    if base.has_errors:
        diagnostic = Diagnostic(
            "uncertifiable",
            "the base analysis reports %d error(s) (%s): no delta-safety, "
            "memory-boundedness or cost guarantees can be attached until "
            "they are fixed"
            % (
                len(base.errors),
                ", ".join(
                    sorted({error.code for error in base.errors})
                ),
            ),
        )
        return AnalysisCertificate(
            description_hash=digest,
            certified=False,
            delta_safe=False,
            memory_bounded=False,
            diagnostics=(diagnostic,),
        ).sign()

    diagnostics: List[Diagnostic] = []
    rule_index_of = {id(rule): index for index, rule in enumerate(description.rules)}

    # 1. Delta-safety prover over every simple-fluent rule.
    rule_certificates: List[RuleCertificate] = []
    fluent_costs: Dict[str, float] = {}
    delta_safe = True
    for key, definition in sorted(description.simple_fluents.items()):
        for kind, rules in (
            ("initiatedAt", definition.initiated_rules),
            ("terminatedAt", definition.terminated_rules),
        ):
            for rule in rules:
                safe, problems = prove_rule_delta_safety(rule)
                for problem in problems:
                    diagnostics.append(
                        Diagnostic(
                            problem.category,
                            problem.message,
                            rule_index=rule_index_of.get(id(rule)),
                            condition_index=problem.condition_index,
                        )
                    )
                delta_safe &= safe
                cost, joins = _simple_rule_cost(rule, window_sensitive=not safe)
                certificate = RuleCertificate(
                    rule_index=rule_index_of.get(id(rule)),
                    fluent=_key_name(key),
                    kind=kind,
                    head=term_to_str(rule.head),
                    delta_safe=safe,
                    cost=round(cost, 4),
                    window_sensitive=not safe,
                    entity_variables=_entity_variable_count(rule),
                )
                rule_certificates.append(certificate)
                fluent_costs[_key_name(key)] = (
                    fluent_costs.get(_key_name(key), 0.0) + certificate.cost
                )
                if joins >= COSTLY_JOIN_COUNT or cost >= COSTLY_RULE_THRESHOLD:
                    diagnostics.append(
                        Diagnostic(
                            "costly-rule",
                            "rule %s has an estimated static cost of %.2f "
                            "(%d enumerating stream joins%s); its weight "
                            "feeds session placement"
                            % (
                                term_to_str(rule.head),
                                cost,
                                joins,
                                ", window-sensitive" if not safe else "",
                            ),
                            rule_index=rule_index_of.get(id(rule)),
                        )
                    )

    for key, static_definition in sorted(description.static_fluents.items()):
        for rule in static_definition.rules:
            cost = _static_rule_cost(rule)
            certificate = RuleCertificate(
                rule_index=rule_index_of.get(id(rule)),
                fluent=_key_name(key),
                kind="holdsFor",
                head=term_to_str(rule.head),
                delta_safe=True,  # interval constructs are pointwise in time
                cost=round(cost, 4),
                window_sensitive=False,
                entity_variables=_entity_variable_count(rule),
            )
            rule_certificates.append(certificate)
            fluent_costs[_key_name(key)] = (
                fluent_costs.get(_key_name(key), 0.0) + certificate.cost
            )
            if cost >= COSTLY_RULE_THRESHOLD:
                diagnostics.append(
                    Diagnostic(
                        "costly-rule",
                        "holdsFor rule %s has an estimated static cost of "
                        "%.2f; its weight feeds session placement"
                        % (term_to_str(rule.head), cost),
                        rule_index=rule_index_of.get(id(rule)),
                    )
                )

    # 2. Memory-boundedness: liveness facts, then the leak analysis.
    semantics = analyse_semantics(
        description,
        vocabulary,
        kb=kb,
        outputs=set(outputs) if outputs is not None else None,
    )
    dead_rules: Set[int] = set(semantics.dead_terminations)
    for index, facts in semantics.rule_facts.items():
        if facts.never_fires:
            dead_rules.add(index)
    reachable: Mapping[FluentKey, Optional[Set[Term]]] = (
        semantics.reachable_values
        if semantics.reachable_values is not None
        else semantics.producible
    )
    leaky = _memory_analysis(description, reachable, dead_rules, diagnostics)
    _propagate_leaks(description, leaky, diagnostics)
    leaky_fluents = tuple(
        sorted(
            "%s=%s" % (_key_name(key), name)
            for key, names in leaky.items()
            for name in names
        )
    )

    return AnalysisCertificate(
        description_hash=digest,
        certified=True,
        delta_safe=delta_safe,
        memory_bounded=not leaky,
        leaky_fluents=leaky_fluents,
        rules=tuple(rule_certificates),
        fluent_costs={key: round(value, 4) for key, value in fluent_costs.items()},
        total_cost=round(sum(fluent_costs.values()), 4),
        diagnostics=tuple(diagnostics),
    ).sign()


def certify_text(
    text: str,
    vocabulary: Optional[Vocabulary] = None,
    kb: Optional[KnowledgeBase] = None,
    outputs: Optional[Sequence[str]] = None,
) -> Tuple[AnalysisCertificate, Optional[List[int]]]:
    """Parse and certify; returns ``(certificate, rule source lines)``.

    A parse failure yields an uncertifiable certificate (RTEC030) instead
    of raising, mirroring :func:`repro.analysis.analyzer.analyse_text`.
    """
    try:
        description = EventDescription.from_text(text)
    except ParseError as exc:
        diagnostic = Diagnostic(
            "uncertifiable",
            "the text failed to parse (%s): nothing can be certified" % exc,
        )
        certificate = AnalysisCertificate(
            description_hash=hashlib.sha256(text.encode()).hexdigest(),
            certified=False,
            delta_safe=False,
            memory_bounded=False,
            diagnostics=(diagnostic,),
        ).sign()
        return certificate, None
    certificate = certify_description(
        description, vocabulary, kb=kb, outputs=outputs
    )
    return certificate, clause_lines(text)
