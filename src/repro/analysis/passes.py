"""The analyser's passes.

Each pass is a function ``(AnalysisContext) -> List[Diagnostic]``:

* **structural** — delegates to ``EventDescription.validate`` (the legacy
  six categories: syntax, malformed rules, undefined names, cycles), so
  the analyser and the old validation path report the exact same
  diagnostics for those classes;
* **binding** — per-rule binding-order dataflow (RTEC007/RTEC008 and
  arithmetic arity misuse under RTEC009), see
  :mod:`repro.analysis.binding`;
* **arity** — wrong-arity uses of reserved predicates (RTEC009);
* **consistency** — never-terminated / never-initiated simple fluents,
  duplicate and contradictory rules (RTEC010–RTEC014);
* **dependency** — dead rules, when the output fluents are known
  (RTEC012);
* **partition** — partitionability diagnostics surfaced as informational
  lints (RTEC015);
* **naming** — unknown names resolvable to a unique close vocabulary name,
  with attached rename fixes (RTEC016).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis import binding
from repro.analysis.diagnostics import Diagnostic, Fix
from repro.analysis.names import closest
from repro.logic.knowledge import KnowledgeBase
from repro.logic.parser import COMPARISON_OPERATORS, LIST_FUNCTOR, Rule
from repro.logic.terms import Compound, Constant, Term, Variable, is_ground, walk_subterms
from repro.rtec.builtins import EVALUABLE_FUNCTORS
from repro.rtec.description import (
    INTERVAL_CONSTRUCTS,
    EventDescription,
    Vocabulary,
    fluent_key,
    head_fvp,
)

__all__ = [
    "AnalysisContext",
    "STRUCTURAL_FUNCTORS",
    "KNOWN_VALUE_CONSTANTS",
    "NameFixes",
    "compute_name_fixes",
    "structural_pass",
    "binding_pass",
    "arity_pass",
    "consistency_pass",
    "dependency_pass",
    "partition_pass",
    "naming_pass",
]

#: Names that belong to the rule language itself, not to any vocabulary.
STRUCTURAL_FUNCTORS: Set[str] = (
    {
        "happensAt",
        "holdsAt",
        "holdsFor",
        "initiatedAt",
        "terminatedAt",
        "initially",
        "maxDuration",
        "not",
        LIST_FUNCTOR,
        "=",
    }
    | set(INTERVAL_CONSTRUCTS)
    | set(EVALUABLE_FUNCTORS)
    | set(COMPARISON_OPERATORS)
)

#: Fluent values that are part of the RTEC/maritime conventions rather than
#: the knowledge base.
KNOWN_VALUE_CONSTANTS: Set[str] = {
    "true",
    "false",
    "nearPorts",
    "farFromPorts",
    "below",
    "normal",
    "above",
    "[]",
}

#: Reserved predicates and their arity (heads, conditions and constructs).
RESERVED_ARITIES: Dict[str, int] = {
    "happensAt": 2,
    "holdsAt": 2,
    "holdsFor": 2,
    "initiatedAt": 2,
    "terminatedAt": 2,
    "initially": 1,
    "maxDuration": 2,
    **INTERVAL_CONSTRUCTS,
}


@dataclass
class AnalysisContext:
    """Everything a pass may consult (only ``description`` is mandatory)."""

    description: EventDescription
    vocabulary: Optional[Vocabulary] = None
    kb: Optional[KnowledgeBase] = None
    #: Names of the fluents the recognition task reports (e.g. the composite
    #: activities); enables the dead-rule check.
    outputs: Optional[Sequence[str]] = None


# -- structural ---------------------------------------------------------------


def structural_pass(ctx: AnalysisContext) -> List[Diagnostic]:
    """The legacy validation, verbatim: one diagnostic currency."""
    return list(ctx.description.validate(ctx.vocabulary))


# -- binding ------------------------------------------------------------------


def binding_pass(ctx: AnalysisContext) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    for index, rule in enumerate(ctx.description.rules):
        for issue in binding.check_rule(rule):
            diagnostics.append(
                Diagnostic(
                    issue.category,
                    issue.message,
                    rule_index=index,
                    condition_index=issue.condition_index,
                )
            )
    return diagnostics


# -- arity --------------------------------------------------------------------


def arity_pass(ctx: AnalysisContext) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    for index, rule in enumerate(ctx.description.rules):
        terms: List[Term] = [rule.head]
        terms.extend(literal.term for literal in rule.body)
        seen: Set[Tuple[str, int]] = set()
        for top in terms:
            for sub in walk_subterms(top):
                if not isinstance(sub, Compound):
                    continue
                expected = RESERVED_ARITIES.get(sub.functor)
                if expected is None or sub.arity == expected:
                    continue
                key = (sub.functor, sub.arity)
                if key in seen:
                    continue
                seen.add(key)
                diagnostics.append(
                    Diagnostic(
                        "wrong-arity",
                        "%s expects %d argument(s), got %d in %r"
                        % (sub.functor, expected, sub.arity, sub),
                        rule_index=index,
                    )
                )
    return diagnostics


# -- consistency --------------------------------------------------------------


def _canonical(term: Term, mapping: Dict[Variable, Variable]) -> Term:
    """Rename variables in order of first occurrence (alpha-equivalence)."""
    if isinstance(term, Variable):
        renamed = mapping.get(term)
        if renamed is None:
            renamed = Variable("_C%d" % len(mapping))
            mapping[term] = renamed
        return renamed
    if isinstance(term, Compound):
        return Compound(term.functor, tuple(_canonical(arg, mapping) for arg in term.args))
    return term


def _canonical_rule(rule: Rule) -> Tuple[Term, Tuple[Tuple[bool, Term], ...]]:
    mapping: Dict[Variable, Variable] = {}
    head = _canonical(rule.head, mapping)
    body = tuple((lit.negated, _canonical(lit.term, mapping)) for lit in rule.body)
    return (head, body)


def _canonical_fvp_body(rule: Rule) -> Tuple[Term, Tuple[Tuple[bool, Term], ...]]:
    """Canonical (head FVP, body) — head predicate ignored, for comparing an
    initiatedAt rule against a terminatedAt rule."""
    mapping: Dict[Variable, Variable] = {}
    head = rule.head
    assert isinstance(head, Compound)
    pair = _canonical(head.args[0], mapping)
    body = tuple((lit.negated, _canonical(lit.term, mapping)) for lit in rule.body)
    return (pair, body)


def _first_rule_index(description: EventDescription, rule: Rule) -> Optional[int]:
    try:
        return description.rules.index(rule)
    except ValueError:
        return None


def consistency_pass(ctx: AnalysisContext) -> List[Diagnostic]:
    description = ctx.description
    diagnostics: List[Diagnostic] = []

    max_duration_keys = set()
    for pattern, _duration in description.max_durations:
        assert isinstance(pattern, Compound)
        try:
            max_duration_keys.add(fluent_key(pattern.args[0]))
        except ValueError:
            continue
    initially_keys = set()
    for pair in description.initial_fvps:
        assert isinstance(pair, Compound)
        try:
            initially_keys.add(fluent_key(pair.args[0]))
        except ValueError:
            continue

    for key, definition in sorted(description.simple_fluents.items()):
        if definition.initiated_rules and not definition.terminated_rules:
            values = [head_fvp(rule)[1] for rule in definition.initiated_rules]
            ground_values = {v for v in values if is_ground(v)}
            multi_valued = len(ground_values) >= 2 or any(
                not is_ground(v) for v in values
            )
            if not multi_valued and key not in max_duration_keys:
                diagnostics.append(
                    Diagnostic(
                        "never-terminated",
                        "simple fluent %s/%d is initiated but has no "
                        "terminatedAt rule, no other value, and no maxDuration "
                        "deadline: once initiated it holds forever" % key,
                        rule_index=_first_rule_index(
                            description, definition.initiated_rules[0]
                        ),
                    )
                )
        if definition.terminated_rules and not definition.initiated_rules:
            if key not in initially_keys:
                diagnostics.append(
                    Diagnostic(
                        "never-initiated",
                        "simple fluent %s/%d is terminated but never initiated "
                        "and not declared initially: its terminations can "
                        "never fire" % key,
                        rule_index=_first_rule_index(
                            description, definition.terminated_rules[0]
                        ),
                    )
                )

    defining = ("initiatedAt", "terminatedAt", "holdsFor")
    seen_canonical: Dict[Tuple[Term, Tuple[Tuple[bool, Term], ...]], int] = {}
    for index, rule in enumerate(description.rules):
        head = rule.head
        if not (isinstance(head, Compound) and head.arity == 2 and head.functor in defining):
            continue
        canon = _canonical_rule(rule)
        first = seen_canonical.get(canon)
        if first is None:
            seen_canonical[canon] = index
        else:
            diagnostics.append(
                Diagnostic(
                    "duplicate-rule",
                    "rule %d duplicates rule %d (identical up to variable "
                    "renaming)" % (index, first),
                    rule_index=index,
                )
            )

    for key, definition in sorted(description.simple_fluents.items()):
        initiated = {
            _canonical_fvp_body(rule): rule for rule in definition.initiated_rules
        }
        for rule in definition.terminated_rules:
            canon = _canonical_fvp_body(rule)
            if canon in initiated:
                head = rule.head
                assert isinstance(head, Compound)
                diagnostics.append(
                    Diagnostic(
                        "contradictory-rules",
                        "%s/%d: the same conditions both initiate and "
                        "terminate %r" % (key + (head.args[0],)),
                        rule_index=_first_rule_index(description, rule),
                    )
                )
    return diagnostics


# -- dependency ---------------------------------------------------------------


def dependency_pass(ctx: AnalysisContext) -> List[Diagnostic]:
    """Dead rules: defined fluents nobody consumes. Needs ``ctx.outputs``
    (without the output declaration every top-level fluent would be dead)."""
    if ctx.outputs is None:
        return []
    description = ctx.description
    output_names = set(ctx.outputs)
    graph = description.dependencies()
    consumed: Set[Tuple[str, int]] = set()
    for deps in graph.values():
        consumed |= deps
    diagnostics: List[Diagnostic] = []
    for key in sorted(description.defined_keys):
        if key in consumed or key[0] in output_names:
            continue
        definition_rules: List[Rule] = []
        if key in description.simple_fluents:
            simple = description.simple_fluents[key]
            definition_rules = simple.initiated_rules + simple.terminated_rules
        elif key in description.static_fluents:
            definition_rules = description.static_fluents[key].rules
        rule_index = (
            _first_rule_index(description, definition_rules[0])
            if definition_rules
            else None
        )
        diagnostics.append(
            Diagnostic(
                "dead-rule",
                "fluent %s/%d is defined but consumed by no rule and is not a "
                "declared output" % key,
                rule_index=rule_index,
            )
        )
    return diagnostics


# -- partition ----------------------------------------------------------------


def partition_pass(ctx: AnalysisContext) -> List[Diagnostic]:
    analysis = ctx.description.partitionability()
    if analysis.shardable:
        return []
    return [
        Diagnostic("non-shardable", message) for message in analysis.diagnostics
    ]


# -- naming -------------------------------------------------------------------


@dataclass
class NameFixes:
    """Resolved and unresolved unknown names of one description.

    ``unresolved`` lists ``(kind, name)`` pairs (kind ``"functor"`` or
    ``"constant"``) for unknown names with no unique close known name.
    """

    functor_renames: Dict[str, str]
    constant_renames: Dict[str, str]
    unresolved: List[Tuple[str, str]]


def _referenced_names(rules: Sequence[Rule]) -> Tuple[Set[str], Set[str]]:
    """(functor names referenced in heads/bodies, string constants used)."""
    functors: Set[str] = set()
    constants: Set[str] = set()
    for rule in rules:
        terms = [rule.head]
        terms.extend(literal.term for literal in rule.body)
        for top in terms:
            for sub in walk_subterms(top):
                if isinstance(sub, Compound):
                    functors.add(sub.functor)
                elif isinstance(sub, Constant) and isinstance(sub.value, str):
                    constants.add(sub.value)
    return functors, constants


def known_functor_names(
    description: EventDescription, vocabulary: Vocabulary
) -> Set[str]:
    """Vocabulary names + fluents the description defines + the language."""
    return (
        {name for name, _arity in vocabulary.input_events}
        | {name for name, _arity in vocabulary.input_fluents}
        | {name for name, _arity in vocabulary.background}
        | {key[0] for key in description.defined_keys}
        | STRUCTURAL_FUNCTORS
    )


def known_constant_names(kb: KnowledgeBase) -> Set[str]:
    """String constants of the knowledge base facts (minus fact functors)."""
    known: Set[str] = set(KNOWN_VALUE_CONSTANTS)
    functors: Set[str] = set()
    for fact in kb.facts():
        for sub in walk_subterms(fact):
            if isinstance(sub, Constant) and isinstance(sub.value, str):
                known.add(sub.value)
            elif isinstance(sub, Compound):
                functors.add(sub.functor)
    return known - functors


def compute_name_fixes(
    description: EventDescription,
    vocabulary: Vocabulary,
    kb: Optional[KnowledgeBase] = None,
    skip_functors: Optional[Mapping[str, str]] = None,
    skip_constants: Optional[Mapping[str, str]] = None,
) -> NameFixes:
    """Resolve unknown names to their unique closest known name.

    ``skip_functors``/``skip_constants`` are renames already decided (e.g.
    a reviewer-supplied map): those names are not re-resolved.
    """
    referenced_functors, referenced_constants = _referenced_names(description.rules)
    known_functors = known_functor_names(description, vocabulary)
    candidates = sorted(known_functors - STRUCTURAL_FUNCTORS)

    functor_renames: Dict[str, str] = {}
    constant_renames: Dict[str, str] = {}
    unresolved: List[Tuple[str, str]] = []

    for name in sorted(
        referenced_functors - known_functors - set(skip_functors or {})
    ):
        match = closest(name, candidates)
        if match is not None:
            functor_renames[name] = match
        else:
            unresolved.append(("functor", name))

    if kb is not None:
        known_constants = known_constant_names(kb)
        constant_candidates = sorted(known_constants - KNOWN_VALUE_CONSTANTS)
        for name in sorted(
            referenced_constants - known_constants - set(skip_constants or {})
        ):
            match = closest(name, constant_candidates)
            if match is not None:
                constant_renames[name] = match
            else:
                unresolved.append(("constant", name))

    return NameFixes(functor_renames, constant_renames, unresolved)


def naming_pass(ctx: AnalysisContext) -> List[Diagnostic]:
    if ctx.vocabulary is None:
        return []
    fixes = compute_name_fixes(ctx.description, ctx.vocabulary, ctx.kb)
    diagnostics: List[Diagnostic] = []
    for old, new in sorted(fixes.functor_renames.items()):
        diagnostics.append(
            Diagnostic(
                "naming",
                "unknown name %r is a close variant of %r" % (old, new),
                fix=Fix("rename-functor", old, new),
            )
        )
    for old, new in sorted(fixes.constant_renames.items()):
        diagnostics.append(
            Diagnostic(
                "naming",
                "unknown constant %r is a close variant of %r" % (old, new),
                fix=Fix("rename-constant", old, new),
            )
        )
    return diagnostics
