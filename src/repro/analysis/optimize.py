"""Analysis-driven, semantics-preserving optimisation of event descriptions.

Consumes the facts of :mod:`repro.analysis.semantics` to rewrite an
:class:`EventDescription` into an equivalent one that the engine evaluates
faster:

* **Background constant folding** — a positive atemporal condition with
  exactly one matching background fact is replaced by substituting that
  fact's bindings through the whole rule (sound: the unique fact is the
  only way the condition can succeed); with zero matching facts the rule
  can never fire and is removed. Folding empties the hoisted atemporal
  prefix of most compiled rules, removing a per-seed-event substitution
  copy from the hot path.
* **Comparison simplification** — always-true comparisons are dropped,
  always-false ones remove the rule, subsumed/duplicate comparisons are
  dropped (relation-set algebra + interval hulls of
  :func:`~repro.analysis.semantics.comparison_facts`).
* **Dead-code elimination** — terminations whose value no initiation can
  produce, rules whose positive ``holdsAt`` references an impossible
  value, and (given a vocabulary) rules and fluents with no derivation
  path from the inputs.
* **Selectivity-ranked reordering** — simple-rule bodies are reordered
  cheapest-first (comparisons, then background lookups, then fluent
  queries, then stream joins) subject to binding-order validity, so
  failing substitutions die before expensive joins.

All transforms preserve the recognised intervals for every execution in
which the original description raises no ``EvaluationError``; rules the
binding analysis flags are passed through untouched so that erroneous
descriptions keep their original runtime behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.binding import check_rule
from repro.analysis.costmodel import STATIC_RANKS, CostModel, condition_class
from repro.analysis.semantics import (
    STREAM_FUNCTORS,
    comparison_facts,
    compute_reachability,
    producible_values,
)
from repro.logic.knowledge import KnowledgeBase
from repro.logic.parser import Literal, Rule
from repro.logic.pretty import literal_to_str, term_to_str
from repro.logic.terms import Compound, Term, Variable, is_fvp, is_ground, term_variables
from repro.logic.unification import Substitution
from repro.rtec.builtins import EVALUABLE_FUNCTORS, is_comparison
from repro.rtec.description import (
    INTERVAL_CONSTRUCTS,
    EventDescription,
    FluentKey,
    Vocabulary,
    fluent_key,
    head_fvp,
)

__all__ = ["OptimisationResult", "optimise_description"]

_KB_FOLD_CAP = 4096


@dataclass
class OptimisationResult:
    """An optimised description plus a log of every rewrite applied."""

    description: EventDescription
    #: (original rule index, reason) for each eliminated rule.
    removed_rules: List[Tuple[int, str]] = field(default_factory=list)
    #: (original rule index, dropped condition, reason).
    dropped_conditions: List[Tuple[int, str, str]] = field(default_factory=list)
    #: (original rule index, folded condition) for background folds.
    folded_literals: List[Tuple[int, str]] = field(default_factory=list)
    #: Original indices of rules whose bodies were reordered.
    reordered_rules: List[int] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def summary(self) -> str:
        return (
            "%d rule(s) removed, %d condition(s) dropped, %d background "
            "literal(s) folded, %d body(ies) reordered"
            % (
                len(self.removed_rules),
                len(self.dropped_conditions),
                len(self.folded_literals),
                len(self.reordered_rules),
            )
        )


def _rule_kind(rule: Rule) -> Optional[str]:
    head = rule.head
    if isinstance(head, Compound) and head.arity == 2 and head.functor in (
        "initiatedAt",
        "terminatedAt",
        "holdsFor",
    ):
        return head.functor
    return None


def _is_background(literal: Literal) -> bool:
    term = literal.term
    return (
        isinstance(term, Compound)
        and term.functor not in STREAM_FUNCTORS
        and term.functor not in INTERVAL_CONSTRUCTS
        and term.functor not in EVALUABLE_FUNCTORS
        and not is_comparison(term)
    )


def _substitute_rule(rule: Rule, subst: Substitution, drop_index: int) -> Rule:
    body = tuple(
        Literal(subst.resolve(literal.term), literal.negated)
        for index, literal in enumerate(rule.body)
        if index != drop_index
    )
    return Rule(subst.resolve(rule.head), body)


def _drop_conditions(rule: Rule, indices: Set[int]) -> Rule:
    body = tuple(
        literal for index, literal in enumerate(rule.body) if index not in indices
    )
    return Rule(rule.head, body)


def _fold_background(
    rule: Rule, original_index: int, kb: KnowledgeBase, result: OptimisationResult
) -> Optional[Rule]:
    """Fold single-fact background literals; ``None`` = rule never fires."""
    changed = True
    while changed:
        changed = False
        for index, literal in enumerate(rule.body):
            if not _is_background(literal):
                continue
            term = literal.term
            if literal.negated:
                # A negated atemporal condition over a pattern no fact can
                # match always succeeds; over a ground term some fact
                # matches, it always fails.
                if not kb.holds(term):
                    result.dropped_conditions.append(
                        (original_index, literal_to_str(literal), "no matching background fact")
                    )
                    rule = _drop_conditions(rule, {index})
                    changed = True
                    break
                if is_ground(term):
                    result.removed_rules.append(
                        (
                            original_index,
                            "negated background condition %s always fails"
                            % literal_to_str(literal),
                        )
                    )
                    return None
                continue
            solutions: List[Substitution] = []
            for subst in kb.query(term):
                solutions.append(subst)
                if len(solutions) > 1:
                    break
            if not solutions:
                result.removed_rules.append(
                    (
                        original_index,
                        "background condition %s matches no fact" % literal_to_str(literal),
                    )
                )
                return None
            if len(solutions) == 1:
                result.folded_literals.append((original_index, literal_to_str(literal)))
                rule = _substitute_rule(rule, solutions[0], index)
                changed = True
                break
    return rule


def _simplify_comparisons(
    rule: Rule, original_index: int, kb: Optional[KnowledgeBase], result: OptimisationResult
) -> Optional[Rule]:
    """Drop always-true/subsumed comparisons; ``None`` = rule never fires."""
    facts = comparison_facts(rule, original_index, kb)
    if facts.contradiction is not None:
        first, second = facts.contradiction
        result.removed_rules.append(
            (
                original_index,
                "contradictory conditions (%s / %s)"
                % (literal_to_str(rule.body[first]), literal_to_str(rule.body[second])),
            )
        )
        return None
    if facts.always_false:
        index = min(facts.always_false)
        result.removed_rules.append(
            (
                original_index,
                "condition %s always evaluates false" % literal_to_str(rule.body[index]),
            )
        )
        return None
    droppable = set(facts.always_true) | set(facts.subsumed)
    if droppable:
        for index in sorted(droppable):
            reason = (
                "always true" if index in facts.always_true else "subsumed by another condition"
            )
            result.dropped_conditions.append(
                (original_index, literal_to_str(rule.body[index]), reason)
            )
        rule = _drop_conditions(rule, droppable)
    return rule


# ---------------------------------------------------------------------------
# Description-level dead-code elimination


def _initially_keys(description: EventDescription) -> Set[FluentKey]:
    keys: Set[FluentKey] = set()
    for pair in description.initial_fvps:
        try:
            keys.add(fluent_key(pair.args[0]))
        except ValueError:
            continue
    return keys


def _defining_indices(rules: List[Optional[Rule]]) -> Dict[FluentKey, List[int]]:
    """Indices of the rules defining each fluent key, over live rules."""
    defining: Dict[FluentKey, List[int]] = {}
    for index, rule in enumerate(rules):
        if rule is None or _rule_kind(rule) is None:
            continue
        try:
            key = fluent_key(head_fvp(rule)[0])
        except ValueError:
            continue
        defining.setdefault(key, []).append(index)
    return defining


def _guarded_removals(
    rules: List[Optional[Rule]],
    removals: Dict[int, str],
    protected_keys: Set[FluentKey],
    result: OptimisationResult,
) -> Dict[int, str]:
    """Cancel removals that would strip every defining rule of an
    ``initially``-declared fluent (the engine only injects ``initially``
    values for keys that are still defined)."""
    if not protected_keys:
        return removals
    defining = _defining_indices(rules)
    final = dict(removals)
    for key in protected_keys:
        indices = defining.get(key, [])
        if indices and all(index in final for index in indices):
            for index in indices:
                final.pop(index, None)
            result.notes.append(
                "kept dead rules of %s/%d: it has an initially declaration" % key
            )
    return final


def _positive_ref_keys(rule: Rule) -> Iterable[Tuple[int, FluentKey, Term, bool]]:
    """(condition index, key, value, negated) of each resolvable
    holdsAt/holdsFor reference."""
    for index, literal in enumerate(rule.body):
        term = literal.term
        if not (
            isinstance(term, Compound)
            and term.functor in ("holdsAt", "holdsFor")
            and term.arity == 2
        ):
            continue
        pair = term.args[0]
        if not (isinstance(pair, Compound) and is_fvp(pair)):
            continue
        try:
            key = fluent_key(pair.args[0])
        except ValueError:
            continue
        yield index, key, pair.args[1], literal.negated


def _eliminate_impossible_refs(
    rules: List[Optional[Rule]],
    transformable: Set[int],
    description: EventDescription,
    protected_keys: Set[FluentKey],
    result: OptimisationResult,
) -> bool:
    """Remove simple rules whose positive holdsAt reference can never
    succeed; drop negated references that always succeed. Returns whether
    anything changed."""
    producible = producible_values(description)
    removals: Dict[int, str] = {}
    drops: Dict[int, Set[int]] = {}
    for index, rule in enumerate(rules):
        if rule is None or index not in transformable:
            continue
        if _rule_kind(rule) not in ("initiatedAt", "terminatedAt"):
            continue
        for cond_index, key, value, negated in _positive_ref_keys(rule):
            domain = producible.get(key)
            if key not in producible or domain is None:
                continue
            if not is_ground(value) or value in domain:
                continue
            rendered = literal_to_str(rule.body[cond_index])
            if negated:
                drops.setdefault(index, set()).add(cond_index)
            else:
                removals[index] = "condition %s can never succeed" % rendered
                break
    removals = _guarded_removals(rules, removals, protected_keys, result)
    changed = False
    for index, reason in removals.items():
        result.removed_rules.append((index, reason))
        rules[index] = None
        changed = True
    for index, indices in drops.items():
        if index in removals or rules[index] is None:
            continue
        for cond_index in sorted(indices):
            result.dropped_conditions.append(
                (
                    index,
                    literal_to_str(rules[index].body[cond_index]),  # type: ignore[union-attr]
                    "negated reference to an impossible value always succeeds",
                )
            )
        rules[index] = _drop_conditions(rules[index], indices)  # type: ignore[arg-type]
        changed = True
    return changed


def _eliminate_dead_terminations(
    rules: List[Optional[Rule]],
    transformable: Set[int],
    description: EventDescription,
    protected_keys: Set[FluentKey],
    result: OptimisationResult,
) -> bool:
    """Remove terminatedAt rules whose value no initiation produces.

    Exact regardless of the runtime inputs: initiations of a simple fluent
    come only from its initiatedAt rules and ``initially`` declarations,
    and terminations without a matching initiation contribute nothing to
    ``pair_intervals``.
    """
    initiable: Dict[FluentKey, Optional[Set[Term]]] = {}
    for key, definition in description.simple_fluents.items():
        values: Optional[Set[Term]] = set()
        for rule in definition.initiated_rules:
            value = head_fvp(rule)[1]
            if values is None:
                break
            if is_ground(value):
                values.add(value)
            else:
                values = None
        initiable[key] = values
    for pair in description.initial_fvps:
        try:
            key = fluent_key(pair.args[0])
        except ValueError:
            continue
        values = initiable.get(key)
        if values is not None:
            values.add(pair.args[1])

    removals: Dict[int, str] = {}
    for index, rule in enumerate(rules):
        if rule is None or index not in transformable:
            continue
        head = rule.head
        if not (isinstance(head, Compound) and head.functor == "terminatedAt" and head.arity == 2):
            continue
        try:
            fluent, value = head_fvp(rule)
            key = fluent_key(fluent)
        except ValueError:
            continue
        domain = initiable.get(key)
        if domain is None or not is_ground(value) or value in domain:
            continue
        removals[index] = (
            "termination value %s is never initiated for %s/%d"
            % (term_to_str(value), key[0], key[1])
        )
    removals = _guarded_removals(rules, removals, protected_keys, result)
    changed = False
    for index, reason in removals.items():
        result.removed_rules.append((index, reason))
        rules[index] = None
        changed = True
    return changed


def _eliminate_unreachable(
    rules: List[Optional[Rule]],
    transformable: Set[int],
    description: EventDescription,
    vocabulary: Vocabulary,
    extra_input_fluents: Set[FluentKey],
    protected_keys: Set[FluentKey],
    result: OptimisationResult,
) -> bool:
    """Remove rules with no derivation path from the actual inputs."""
    input_events = set(vocabulary.input_events)
    trust_events = True
    for rule in rules:
        if rule is None or _rule_kind(rule) not in ("initiatedAt", "terminatedAt"):
            continue
        if not rule.body or rule.body[0].negated:
            continue
        seed = rule.body[0].term
        if not (isinstance(seed, Compound) and seed.functor == "happensAt" and seed.arity == 2):
            continue
        try:
            key = fluent_key(seed.args[0])
        except ValueError:
            continue
        if key not in input_events:
            # The description references undeclared events; a non-strict
            # engine may still receive them, so distrust the vocabulary.
            trust_events = False
            break
    input_fluent_keys = set(vocabulary.input_fluents) | extra_input_fluents
    state = compute_reachability(
        description,
        input_events=input_events,
        input_fluent_keys=input_fluent_keys,
        trust_events=trust_events,
    )

    removals: Dict[int, str] = {}
    for index, rule in enumerate(rules):
        if rule is None or index not in transformable:
            continue
        kind = _rule_kind(rule)
        if kind is None:
            continue
        try:
            key = fluent_key(head_fvp(rule)[0])
        except ValueError:
            continue
        key_state = state.get(key)
        if key_state is not None and not key_state and key not in input_fluent_keys:
            removals[index] = "fluent %s/%d is unreachable from the inputs" % key
            continue
        if kind in ("initiatedAt", "terminatedAt"):
            if trust_events and rule.body and not rule.body[0].negated:
                seed = rule.body[0].term
                if (
                    isinstance(seed, Compound)
                    and seed.functor == "happensAt"
                    and seed.arity == 2
                ):
                    try:
                        seed_key = fluent_key(seed.args[0])
                    except ValueError:
                        seed_key = None
                    if seed_key is not None and seed_key not in input_events:
                        removals[index] = (
                            "seed event %s/%d is not an input event" % seed_key
                        )
                        continue
            for _cond_index, ref_key, value, negated in _positive_ref_keys(rule):
                if negated or ref_key in input_fluent_keys:
                    continue
                ref_state = state.get(ref_key)
                if ref_state is None:
                    if ref_key not in state:
                        removals[index] = (
                            "references undefined fluent %s/%d" % ref_key
                        )
                        break
                    continue
                if not ref_state or (is_ground(value) and value not in ref_state):
                    removals[index] = (
                        "positive reference to unreachable %s/%d" % ref_key
                    )
                    break
    removals = _guarded_removals(rules, removals, protected_keys, result)
    changed = False
    for index, reason in removals.items():
        result.removed_rules.append((index, reason))
        rules[index] = None
        changed = True
    return changed


# ---------------------------------------------------------------------------
# Selectivity-ranked body reordering


def _literal_cost(literal: Literal, bound: Set[Variable]) -> int:
    """The static rank of one condition (fallback when no cost model).

    A fully bound holdsAt is an O(1) store lookup; with unbound pattern
    variables it enumerates store instances — ranked after the stream join
    so it does not lose its cheap-lookup shape.
    """
    return STATIC_RANKS[condition_class(literal, bound)]


def _required_vars(literal: Literal) -> Set[Variable]:
    term = literal.term
    if literal.negated or is_comparison(term):
        return set(term_variables(term))
    if isinstance(term, Compound) and term.functor == "holdsAt" and term.arity == 2:
        return set(term_variables(term.args[1]))
    return set()


def _binds_vars(literal: Literal) -> Set[Variable]:
    if literal.negated or is_comparison(literal.term):
        return set()
    return set(term_variables(literal.term))


def _reorder_body(rule: Rule, cost_model: Optional[CostModel] = None) -> Optional[Rule]:
    """Greedy cheapest-eligible-first ordering; ``None`` = keep original.

    Sound because body conditions are a pure conjunction (solution sets are
    order-independent), initiation/termination points accumulate into sets,
    and a negation-as-failure or comparison literal is only placed once all
    its variables are bound by earlier positive literals — the same
    dataflow contract the engine's left-to-right evaluation requires. The
    soundness argument is independent of the rank function, so a measured
    ``cost_model`` (see :mod:`repro.analysis.costmodel`) changes only
    *which* valid order is picked, never the recognised intervals. With a
    model, ties on the measured rank fall back to the static rank and then
    the original index, keeping the order deterministic.
    """
    body = rule.body
    if len(body) <= 2:
        return None
    for literal in body:
        term = literal.term
        if not isinstance(term, Compound):
            return None
        if term.functor == "holdsFor" or term.functor in INTERVAL_CONSTRUCTS:
            return None
    seed = body[0]
    remaining = list(range(1, len(body)))
    bound: Set[Variable] = set(term_variables(seed.term))
    order: List[int] = [0]

    def rank_key(index: int) -> Tuple[float, int, int]:
        cls = condition_class(body[index], bound)
        static = STATIC_RANKS[cls]
        measured = cost_model.rank(cls) if cost_model is not None else float(static)
        return (measured, static, index)

    while remaining:
        eligible = [
            index for index in remaining if _required_vars(body[index]) <= bound
        ]
        if not eligible:
            return None  # cannot verify a valid reorder; keep the original
        best = min(eligible, key=rank_key)
        order.append(best)
        remaining.remove(best)
        bound |= _binds_vars(body[best])
    if order == list(range(len(body))):
        return None
    return Rule(rule.head, tuple(body[index] for index in order))


# ---------------------------------------------------------------------------
# Entry point


def optimise_description(
    description: EventDescription,
    kb: Optional[KnowledgeBase] = None,
    vocabulary: Optional[Vocabulary] = None,
    extra_input_fluents: Iterable[FluentKey] = (),
    reorder: bool = True,
    prune_unreachable: bool = True,
    cost_model: Optional[CostModel] = None,
) -> OptimisationResult:
    """Produce an equivalent, faster event description.

    ``kb`` enables background folding (the optimised description is only
    equivalent for runs against that same knowledge base); ``vocabulary``
    enables reachability pruning under the assumption that the runtime
    stream only carries declared input events and that injected fluents
    are limited to the declared input fluents plus ``extra_input_fluents``
    (pass the keys actually injected — the engine does). ``cost_model``
    replaces the static selectivity ranks of Phase C with measured ones
    (see :func:`repro.analysis.costmodel.measure_cost_model`); results
    stay byte-identical for any model.
    """
    result = OptimisationResult(description=description)
    if cost_model is not None:
        result.notes.append(
            "selectivity ranks from measured cost model (%s)"
            % (cost_model.source or "unlabelled")
        )
    rules: List[Optional[Rule]] = list(description.rules)
    protected = _initially_keys(description)
    # Rules the binding analysis flags are passed through untouched: their
    # runtime behaviour (raising EvaluationError) must be preserved.
    transformable: Set[int] = set()
    for index, rule in enumerate(rules):
        if _rule_kind(rule) is not None and rule.body and not check_rule(rule):
            transformable.add(index)

    # Phase A: per-rule folding and comparison simplification.
    for index, rule in enumerate(rules):
        if rule is None or index not in transformable:
            continue
        if kb is not None:
            folded = _fold_background(rule, index, kb, result)
            if folded is None:
                candidate_removals = _guarded_removals(
                    rules, {index: "background fold"}, protected, result
                )
                if index in candidate_removals:
                    rules[index] = None
                    continue
                # Protected: keep the original rule untouched.
                result.removed_rules = [
                    entry for entry in result.removed_rules if entry[0] != index
                ]
                continue
            rule = folded
        if _rule_kind(rule) in ("initiatedAt", "terminatedAt"):
            simplified = _simplify_comparisons(rule, index, kb, result)
            if simplified is None:
                candidate_removals = _guarded_removals(
                    rules, {index: "contradiction"}, protected, result
                )
                if index in candidate_removals:
                    rules[index] = None
                    continue
                result.removed_rules = [
                    entry for entry in result.removed_rules if entry[0] != index
                ]
                continue
            rule = simplified
        rules[index] = rule

    # Phase B: description-level dead-code elimination to a fixpoint.
    changed = True
    while changed:
        changed = False
        live = [rule for rule in rules if rule is not None]
        rebuilt = EventDescription(live)
        # Map facts computed over the rebuilt description back via identity.
        if _eliminate_impossible_refs(rules, transformable, rebuilt, protected, result):
            changed = True
            continue
        if _eliminate_dead_terminations(rules, transformable, rebuilt, protected, result):
            changed = True
            continue
        if vocabulary is not None and prune_unreachable:
            if _eliminate_unreachable(
                rules,
                transformable,
                rebuilt,
                vocabulary,
                set(extra_input_fluents),
                protected,
                result,
            ):
                changed = True

    # Phase C: selectivity-ranked reordering of simple-rule bodies.
    if reorder:
        for index, rule in enumerate(rules):
            if rule is None or index not in transformable:
                continue
            if _rule_kind(rule) not in ("initiatedAt", "terminatedAt"):
                continue
            reordered = _reorder_body(rule, cost_model)
            if reordered is not None:
                rules[index] = reordered
                result.reordered_rules.append(index)

    final = EventDescription([rule for rule in rules if rule is not None])
    result.description = final
    return result
