"""String-distance helpers for name diagnostics and auto-fixes.

The paper's first error category is *naming divergence*: generated rules
that use case/underscore variants (``gapEnd`` vs ``gap_end``) or slightly
misspelt forms of vocabulary names. These helpers resolve such names to
their unique closest known name; both the analyser's naming pass and
:mod:`repro.generation.correction` use them, so lint fixes and the
correction step agree by construction.
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = ["levenshtein", "normalise", "closest"]


def levenshtein(left: str, right: str) -> int:
    """Edit distance (insert/delete/substitute), iterative two-row version."""
    if left == right:
        return 0
    if not left:
        return len(right)
    if not right:
        return len(left)
    previous = list(range(len(right) + 1))
    for i, l_ch in enumerate(left, start=1):
        current = [i]
        for j, r_ch in enumerate(right, start=1):
            cost = 0 if l_ch == r_ch else 1
            current.append(min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost))
        previous = current
    return previous[-1]


def normalise(name: str) -> str:
    """Case- and underscore-insensitive canonical form of a name."""
    return name.replace("_", "").lower()


def closest(name: str, candidates: Sequence[str], max_relative: float = 0.5) -> Optional[str]:
    """The unique best candidate: exact normalised match, else smallest edit
    distance within ``max_relative`` of the name length (ties unresolved)."""
    normalised = normalise(name)
    exact = [c for c in candidates if normalise(c) == normalised]
    if len(exact) == 1:
        return exact[0]
    if len(exact) > 1:
        return None
    scored = sorted(
        ((levenshtein(normalised, normalise(c)), c) for c in candidates),
        key=lambda pair: (pair[0], pair[1]),
    )
    if not scored:
        return None
    best_distance, best = scored[0]
    limit = max(1, int(max_relative * max(len(normalised), 1)))
    if best_distance > limit:
        return None
    if len(scored) > 1 and scored[1][0] == best_distance:
        return None  # ambiguous
    return best
