"""Application of machine-applicable fixes to rule sets.

The naming pass attaches :class:`~repro.analysis.diagnostics.Fix` objects
(functor/constant renames) to its diagnostics; this module turns a batch of
fixes into rename maps and rewrites rules accordingly. The correction step
(:mod:`repro.generation.correction`) shares these rewriters so that lint
fixes and correction apply identically.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.logic.parser import Literal, Rule
from repro.logic.terms import Compound, Constant, Term

__all__ = ["rewrite_term", "rewrite_rule", "rewrite_rules", "fix_maps", "apply_fixes"]


def rewrite_term(
    term: Term, functor_map: Mapping[str, str], constant_map: Mapping[str, str]
) -> Term:
    """Rename functors and string constants throughout a term."""
    if isinstance(term, Compound):
        functor = functor_map.get(term.functor, term.functor)
        return Compound(
            functor,
            tuple(rewrite_term(arg, functor_map, constant_map) for arg in term.args),
        )
    if isinstance(term, Constant) and isinstance(term.value, str):
        renamed = constant_map.get(term.value)
        if renamed is not None:
            return Constant(renamed)
    return term


def rewrite_rule(
    rule: Rule, functor_map: Mapping[str, str], constant_map: Mapping[str, str]
) -> Rule:
    return Rule(
        rewrite_term(rule.head, functor_map, constant_map),
        tuple(
            Literal(rewrite_term(literal.term, functor_map, constant_map), literal.negated)
            for literal in rule.body
        ),
    )


def rewrite_rules(
    rules: Sequence[Rule], functor_map: Mapping[str, str], constant_map: Mapping[str, str]
) -> List[Rule]:
    return [rewrite_rule(rule, functor_map, constant_map) for rule in rules]


def fix_maps(diagnostics: Iterable[Diagnostic]) -> Tuple[Dict[str, str], Dict[str, str]]:
    """Collect the rename maps of all fixable diagnostics."""
    functor_map: Dict[str, str] = {}
    constant_map: Dict[str, str] = {}
    for diagnostic in diagnostics:
        fix = diagnostic.fix
        if fix is None:
            continue
        if fix.kind == "rename-functor":
            functor_map.setdefault(fix.old, fix.new)
        elif fix.kind == "rename-constant":
            constant_map.setdefault(fix.old, fix.new)
    return functor_map, constant_map


def apply_fixes(rules: Sequence[Rule], diagnostics: Iterable[Diagnostic]) -> List[Rule]:
    """Apply every fixable diagnostic to a rule set, returning new rules."""
    functor_map, constant_map = fix_maps(diagnostics)
    if not functor_map and not constant_map:
        return list(rules)
    return rewrite_rules(rules, functor_map, constant_map)
