"""Application of machine-applicable fixes to rule sets.

The naming pass attaches :class:`~repro.analysis.diagnostics.Fix` objects
(functor/constant renames) to its diagnostics; this module turns a batch of
fixes into rename maps and rewrites rules accordingly. The correction step
(:mod:`repro.generation.correction`) shares these rewriters so that lint
fixes and correction apply identically.

The semantic layer adds two structural fix kinds: ``"drop-condition"``
(RTEC021 subsumed conditions, located by the diagnostic's rule/condition
span) and ``"remove-rule"`` (RTEC019 contradictory rules, RTEC024 dead
terminations, located by the rule index). :func:`apply_fixes` applies
renames first, then drops conditions, then removes rules — each indexed
against the *original* rule list, so spans from one lint run compose.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.logic.parser import Literal, Rule
from repro.logic.terms import Compound, Constant, Term

__all__ = [
    "rewrite_term",
    "rewrite_rule",
    "rewrite_rules",
    "fix_maps",
    "structural_fixes",
    "apply_fixes",
]


def rewrite_term(
    term: Term, functor_map: Mapping[str, str], constant_map: Mapping[str, str]
) -> Term:
    """Rename functors and string constants throughout a term."""
    if isinstance(term, Compound):
        functor = functor_map.get(term.functor, term.functor)
        return Compound(
            functor,
            tuple(rewrite_term(arg, functor_map, constant_map) for arg in term.args),
        )
    if isinstance(term, Constant) and isinstance(term.value, str):
        renamed = constant_map.get(term.value)
        if renamed is not None:
            return Constant(renamed)
    return term


def rewrite_rule(
    rule: Rule, functor_map: Mapping[str, str], constant_map: Mapping[str, str]
) -> Rule:
    return Rule(
        rewrite_term(rule.head, functor_map, constant_map),
        tuple(
            Literal(rewrite_term(literal.term, functor_map, constant_map), literal.negated)
            for literal in rule.body
        ),
    )


def rewrite_rules(
    rules: Sequence[Rule], functor_map: Mapping[str, str], constant_map: Mapping[str, str]
) -> List[Rule]:
    return [rewrite_rule(rule, functor_map, constant_map) for rule in rules]


def fix_maps(diagnostics: Iterable[Diagnostic]) -> Tuple[Dict[str, str], Dict[str, str]]:
    """Collect the rename maps of all fixable diagnostics."""
    functor_map: Dict[str, str] = {}
    constant_map: Dict[str, str] = {}
    for diagnostic in diagnostics:
        fix = diagnostic.fix
        if fix is None:
            continue
        if fix.kind == "rename-functor":
            functor_map.setdefault(fix.old, fix.new)
        elif fix.kind == "rename-constant":
            constant_map.setdefault(fix.old, fix.new)
    return functor_map, constant_map


def structural_fixes(
    diagnostics: Iterable[Diagnostic],
) -> Tuple[Dict[int, Set[int]], Set[int]]:
    """Collect the structural fixes of a diagnostic batch.

    Returns ``(drops, removals)``: condition indices to drop per rule
    index, and rule indices to remove outright. Diagnostics without the
    span needed to locate their fix are skipped.
    """
    drops: Dict[int, Set[int]] = {}
    removals: Set[int] = set()
    for diagnostic in diagnostics:
        fix = diagnostic.fix
        if fix is None:
            continue
        if fix.kind == "drop-condition":
            if diagnostic.rule_index is not None and diagnostic.condition_index is not None:
                drops.setdefault(diagnostic.rule_index, set()).add(
                    diagnostic.condition_index
                )
        elif fix.kind == "remove-rule":
            if diagnostic.rule_index is not None:
                removals.add(diagnostic.rule_index)
    return drops, removals


def apply_fixes(rules: Sequence[Rule], diagnostics: Iterable[Diagnostic]) -> List[Rule]:
    """Apply every fixable diagnostic to a rule set, returning new rules.

    Renames apply first (they do not shift spans), then subsumed
    conditions are dropped, then contradicted/dead rules are removed —
    both keyed by the diagnostics' spans into the original rule list.
    """
    diagnostics = list(diagnostics)
    functor_map, constant_map = fix_maps(diagnostics)
    drops, removals = structural_fixes(diagnostics)
    if functor_map or constant_map:
        fixed = rewrite_rules(rules, functor_map, constant_map)
    else:
        fixed = list(rules)
    if not drops and not removals:
        return fixed
    result: List[Rule] = []
    for index, rule in enumerate(fixed):
        if index in removals:
            continue
        dropped = drops.get(index)
        if dropped:
            rule = Rule(
                rule.head,
                tuple(
                    literal
                    for cond_index, literal in enumerate(rule.body)
                    if cond_index not in dropped
                ),
            )
        result.append(rule)
    return result
