"""Application of machine-applicable fixes to rule sets.

The naming pass attaches :class:`~repro.analysis.diagnostics.Fix` objects
(functor/constant renames) to its diagnostics; this module turns a batch of
fixes into rename maps and rewrites rules accordingly. The correction step
(:mod:`repro.generation.correction`) shares these rewriters so that lint
fixes and correction apply identically.

The semantic layer adds two structural fix kinds: ``"drop-condition"``
(RTEC021 subsumed conditions, located by the diagnostic's rule/condition
span) and ``"remove-rule"`` (RTEC019 contradictory rules, RTEC024 dead
terminations, located by the rule index). :func:`apply_fixes` applies
renames first, then drops conditions, then removes rules — each indexed
against the *original* rule list, so spans from one lint run compose.

:func:`apply_fixes` is deterministic and idempotent:

* rename maps are built over the *sorted* fix set (the result does not
  depend on diagnostic order) and normalised — chains (``a -> b`` plus
  ``b -> c`` collapse to ``a -> c`` and ``b -> c``), cycles and identity
  entries are dropped — so re-applying the same batch finds none of the
  old names and is a no-op;
* structural spans are verified against the rules they index into (the
  condition/head at the span must still render equal to ``fix.old``), so
  spans recorded against an already-fixed rule list no longer match and
  are skipped instead of deleting an innocent bystander.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.logic.parser import Literal, Rule
from repro.logic.pretty import literal_to_str, term_to_str
from repro.logic.terms import Compound, Constant, Term

__all__ = [
    "rewrite_term",
    "rewrite_rule",
    "rewrite_rules",
    "fix_maps",
    "structural_fixes",
    "apply_fixes",
]


def rewrite_term(
    term: Term, functor_map: Mapping[str, str], constant_map: Mapping[str, str]
) -> Term:
    """Rename functors and string constants throughout a term."""
    if isinstance(term, Compound):
        functor = functor_map.get(term.functor, term.functor)
        return Compound(
            functor,
            tuple(rewrite_term(arg, functor_map, constant_map) for arg in term.args),
        )
    if isinstance(term, Constant) and isinstance(term.value, str):
        renamed = constant_map.get(term.value)
        if renamed is not None:
            return Constant(renamed)
    return term


def rewrite_rule(
    rule: Rule, functor_map: Mapping[str, str], constant_map: Mapping[str, str]
) -> Rule:
    return Rule(
        rewrite_term(rule.head, functor_map, constant_map),
        tuple(
            Literal(rewrite_term(literal.term, functor_map, constant_map), literal.negated)
            for literal in rule.body
        ),
    )


def rewrite_rules(
    rules: Sequence[Rule], functor_map: Mapping[str, str], constant_map: Mapping[str, str]
) -> List[Rule]:
    return [rewrite_rule(rule, functor_map, constant_map) for rule in rules]


def normalise_rename_map(mapping: Mapping[str, str]) -> Dict[str, str]:
    """Collapse rename chains and drop cycles and identity entries.

    ``{a: b, b: c}`` becomes ``{a: c, b: c}`` (applying the result twice
    equals applying it once); a cycle such as ``{a: b, b: a}`` is dropped
    entirely — a swap is not idempotent, so no deterministic single map
    can honour it.
    """
    resolved: Dict[str, str] = {}
    for old in sorted(mapping):
        target = mapping[old]
        seen = {old}
        while target in mapping and target not in seen:
            seen.add(target)
            target = mapping[target]
        if target != old and target not in seen:
            resolved[old] = target
    return resolved


def fix_maps(diagnostics: Iterable[Diagnostic]) -> Tuple[Dict[str, str], Dict[str, str]]:
    """Collect the rename maps of all fixable diagnostics.

    Deterministic under any diagnostic ordering: conflicting fixes for the
    same old name are resolved by sorted ``(old, new)`` order (first wins),
    and the maps are normalised with :func:`normalise_rename_map`.
    """
    functor_pairs: List[Tuple[str, str]] = []
    constant_pairs: List[Tuple[str, str]] = []
    for diagnostic in diagnostics:
        fix = diagnostic.fix
        if fix is None:
            continue
        if fix.kind == "rename-functor":
            functor_pairs.append((fix.old, fix.new))
        elif fix.kind == "rename-constant":
            constant_pairs.append((fix.old, fix.new))
    functor_map: Dict[str, str] = {}
    constant_map: Dict[str, str] = {}
    for old, new in sorted(set(functor_pairs)):
        functor_map.setdefault(old, new)
    for old, new in sorted(set(constant_pairs)):
        constant_map.setdefault(old, new)
    return normalise_rename_map(functor_map), normalise_rename_map(constant_map)


def _span_matches(rules: Sequence[Rule], diagnostic: Diagnostic, expected: str) -> bool:
    """Whether the span of ``diagnostic`` still holds the rendered ``expected``.

    An empty ``expected`` never matches: without a recorded rendering the
    span cannot be verified, and trusting it would let a stale span fire
    on whatever rule shifted into its place (breaking the idempotence
    contract of :func:`apply_fixes`). Every analysis pass records the
    rendering; only hand-built diagnostics can lack it.
    """
    if not expected:
        return False
    rule_index = diagnostic.rule_index
    if rule_index is None or not 0 <= rule_index < len(rules):
        return False
    rule = rules[rule_index]
    if diagnostic.condition_index is None:
        return term_to_str(rule.head) == expected
    if not 0 <= diagnostic.condition_index < len(rule.body):
        return False
    return literal_to_str(rule.body[diagnostic.condition_index]) == expected


def structural_fixes(
    diagnostics: Iterable[Diagnostic],
    rules: Optional[Sequence[Rule]] = None,
) -> Tuple[Dict[int, Set[int]], Set[int]]:
    """Collect the structural fixes of a diagnostic batch.

    Returns ``(drops, removals)``: condition indices to drop per rule
    index, and rule indices to remove outright. Diagnostics without the
    span needed to locate their fix are skipped. When ``rules`` is given,
    each span is verified against it — the condition (or rule head) at the
    span must still render equal to the fix's recorded ``old`` text — so
    stale spans (e.g. from re-applying an already-applied batch) are
    skipped instead of mis-firing on shifted indices.
    """
    drops: Dict[int, Set[int]] = {}
    removals: Set[int] = set()
    for diagnostic in diagnostics:
        fix = diagnostic.fix
        if fix is None:
            continue
        if fix.kind == "drop-condition":
            if diagnostic.rule_index is not None and diagnostic.condition_index is not None:
                if rules is not None and not _span_matches(rules, diagnostic, fix.old):
                    continue
                drops.setdefault(diagnostic.rule_index, set()).add(
                    diagnostic.condition_index
                )
        elif fix.kind == "remove-rule":
            if diagnostic.rule_index is not None:
                if rules is not None and not _span_matches(rules, diagnostic, fix.old):
                    continue
                removals.add(diagnostic.rule_index)
    return drops, removals


def apply_fixes(rules: Sequence[Rule], diagnostics: Iterable[Diagnostic]) -> List[Rule]:
    """Apply every fixable diagnostic to a rule set, returning new rules.

    Renames apply first (they do not shift spans), then subsumed
    conditions are dropped, then contradicted/dead rules are removed —
    both keyed by the diagnostics' spans into the original rule list and
    verified against it (see :func:`structural_fixes`). Deterministic
    under any diagnostic ordering, and idempotent:
    ``apply_fixes(apply_fixes(rules, ds), ds) == apply_fixes(rules, ds)``.
    """
    diagnostics = list(diagnostics)
    functor_map, constant_map = fix_maps(diagnostics)
    drops, removals = structural_fixes(diagnostics, rules)
    if functor_map or constant_map:
        fixed = rewrite_rules(rules, functor_map, constant_map)
    else:
        fixed = list(rules)
    if not drops and not removals:
        return fixed
    result: List[Rule] = []
    for index, rule in enumerate(fixed):
        if index in removals:
            continue
        dropped = drops.get(index)
        if dropped:
            rule = Rule(
                rule.head,
                tuple(
                    literal
                    for cond_index, literal in enumerate(rule.body)
                    if cond_index not in dropped
                ),
            )
        result.append(rule)
    return result
