"""Static (atemporal) knowledge base.

RTEC rule bodies may reference background knowledge such as
``areaType(AreaID, AreaType)``, ``thresholds(Name, Value)`` or
``vesselType(Vessel, Type)`` (Section 3.2 of the paper). These facts do not
change over time; the engine queries them by unification.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.logic.parser import parse_program
from repro.logic.terms import Compound, Constant, Term, is_ground
from repro.logic.unification import Substitution, unify

__all__ = ["KnowledgeBase"]


def _key_of(term: Term) -> Tuple[str, int]:
    if isinstance(term, Compound):
        return (term.functor, term.arity)
    if isinstance(term, Constant) and isinstance(term.value, str):
        return (term.value, 0)
    raise ValueError("knowledge base facts must be atoms or compounds: %r" % (term,))


class KnowledgeBase:
    """A set of ground atemporal facts indexed by (functor, arity)."""

    def __init__(self, facts: Iterable[Term] = ()) -> None:
        self._facts: Dict[Tuple[str, int], List[Term]] = defaultdict(list)
        for fact in facts:
            self.add(fact)

    @classmethod
    def from_text(cls, text: str) -> "KnowledgeBase":
        """Build a knowledge base from a program of facts, e.g. ``areaType(a1, fishing).``"""
        kb = cls()
        for rule in parse_program(text):
            if not rule.is_fact:
                raise ValueError("knowledge bases may only contain facts: %r" % (rule,))
            kb.add(rule.head)
        return kb

    def add(self, fact: Term) -> None:
        if not is_ground(fact):
            raise ValueError("knowledge base facts must be ground: %r" % (fact,))
        key = _key_of(fact)
        if fact not in self._facts[key]:
            self._facts[key].append(fact)

    def predicates(self) -> Iterator[Tuple[str, int]]:
        """Yield the (functor, arity) pairs with at least one fact."""
        return iter(sorted(self._facts))

    def facts(self, functor: Optional[str] = None) -> Iterator[Term]:
        """Yield all facts, or only those with the given functor."""
        for (name, _arity), stored in sorted(self._facts.items()):
            if functor is None or name == functor:
                yield from stored

    def query(self, goal: Term, subst: Optional[Substitution] = None) -> Iterator[Substitution]:
        """Yield one extended substitution per fact unifying with ``goal``."""
        if subst is None:
            subst = Substitution()
        goal = subst.resolve(goal)
        try:
            key = _key_of(goal)
        except ValueError:
            return
        for fact in self._facts.get(key, ()):
            extended = unify(goal, fact, subst)
            if extended is not None:
                yield extended

    def holds(self, goal: Term, subst: Optional[Substitution] = None) -> bool:
        """True when at least one fact unifies with ``goal``."""
        return next(self.query(goal, subst), None) is not None

    def __len__(self) -> int:
        return sum(len(v) for v in self._facts.values())

    def __contains__(self, fact: Term) -> bool:
        try:
            key = _key_of(fact)
        except ValueError:
            return False
        return fact in self._facts.get(key, ())
