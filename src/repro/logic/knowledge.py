"""Static (atemporal) knowledge base.

RTEC rule bodies may reference background knowledge such as
``areaType(AreaID, AreaType)``, ``thresholds(Name, Value)`` or
``vesselType(Vessel, Type)`` (Section 3.2 of the paper). These facts do not
change over time; the engine queries them by unification.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.logic.parser import parse_program
from repro.logic.terms import Compound, Constant, Term, is_ground
from repro.logic.unification import Substitution, unify

__all__ = ["KnowledgeBase"]


def _key_of(term: Term) -> Tuple[str, int]:
    if isinstance(term, Compound):
        return (term.functor, term.arity)
    if isinstance(term, Constant) and isinstance(term.value, str):
        return (term.value, 0)
    raise ValueError("knowledge base facts must be atoms or compounds: %r" % (term,))


class KnowledgeBase:
    """A set of ground atemporal facts indexed by (functor, arity).

    Two secondary indexes accelerate the rule-evaluation hot path: a set per
    predicate for O(1) fully-ground queries, and a first-argument index so a
    query with a bound first argument (``vesselSpeedRange(v1, Min, Max)``)
    only unifies against the facts of that entity instead of the whole
    predicate. Both rely on :class:`~repro.logic.terms.Constant` equality
    and hashing agreeing with unification (``2`` matches ``2.0``).
    """

    def __init__(self, facts: Iterable[Term] = ()) -> None:
        self._facts: Dict[Tuple[str, int], List[Term]] = defaultdict(list)
        self._fact_sets: Dict[Tuple[str, int], set] = defaultdict(set)
        self._by_first: Dict[Tuple[str, int], Dict[Term, List[Term]]] = defaultdict(dict)
        for fact in facts:
            self.add(fact)

    @classmethod
    def from_text(cls, text: str) -> "KnowledgeBase":
        """Build a knowledge base from a program of facts, e.g. ``areaType(a1, fishing).``"""
        kb = cls()
        for rule in parse_program(text):
            if not rule.is_fact:
                raise ValueError("knowledge bases may only contain facts: %r" % (rule,))
            kb.add(rule.head)
        return kb

    def add(self, fact: Term) -> None:
        if not is_ground(fact):
            raise ValueError("knowledge base facts must be ground: %r" % (fact,))
        key = _key_of(fact)
        if fact not in self._fact_sets[key]:
            self._facts[key].append(fact)
            self._fact_sets[key].add(fact)
            if isinstance(fact, Compound):
                self._by_first[key].setdefault(fact.args[0], []).append(fact)

    def predicates(self) -> Iterator[Tuple[str, int]]:
        """Yield the (functor, arity) pairs with at least one fact."""
        return iter(sorted(self._facts))

    def facts(self, functor: Optional[str] = None) -> Iterator[Term]:
        """Yield all facts, or only those with the given functor."""
        for (name, _arity), stored in sorted(self._facts.items()):
            if functor is None or name == functor:
                yield from stored

    def query(self, goal: Term, subst: Optional[Substitution] = None) -> Iterator[Substitution]:
        """Yield one extended substitution per fact unifying with ``goal``."""
        if subst is None:
            subst = Substitution()
        goal = subst.resolve(goal)
        try:
            key = _key_of(goal)
        except ValueError:
            return
        if is_ground(goal):
            if goal in self._fact_sets.get(key, ()):
                yield subst
            return
        candidates = self._facts.get(key, ())
        if candidates and isinstance(goal, Compound):
            first = goal.args[0]
            if is_ground(first):
                candidates = self._by_first[key].get(first, ())
        for fact in candidates:
            extended = unify(goal, fact, subst)
            if extended is not None:
                yield extended

    def holds(self, goal: Term, subst: Optional[Substitution] = None) -> bool:
        """True when at least one fact unifies with ``goal``."""
        return next(self.query(goal, subst), None) is not None

    def __len__(self) -> int:
        return sum(len(v) for v in self._facts.values())

    def __contains__(self, fact: Term) -> bool:
        try:
            key = _key_of(fact)
        except ValueError:
            return False
        return fact in self._fact_sets.get(key, ())
