"""Parser for the RTEC rule dialect used throughout the reproduction.

The concrete syntax follows the paper (Definitions 2.2 and 2.4):

.. code-block:: prolog

    initiatedAt(withinArea(Vessel, AreaType)=true, T) :-
        happensAt(entersArea(Vessel, Area), T),
        areaType(Area, AreaType).

    holdsFor(underWay(Vessel)=true, I) :-
        holdsFor(movingSpeed(Vessel)=below, I1),
        holdsFor(movingSpeed(Vessel)=normal, I2),
        holdsFor(movingSpeed(Vessel)=above, I3),
        union_all([I1, I2, I3], I).

Supported constructs:

* facts and rules, terminated by ``.``;
* ``not`` and ``\\+`` prefix negation on body literals;
* infix ``=`` building fluent-value pairs (``'='(F, V)``), and infix
  comparison operators ``<``, ``>``, ``=<``, ``>=``, ``=:=``, ``=\\=``;
* lists ``[I1, I2]``, represented as the reserved compound ``list(...)``
  (the empty list is the constant ``[]``);
* ``%`` line comments;
* integers, floats, single-quoted atoms.

The parser is deliberately strict: anything outside this dialect raises
:class:`ParseError` with a line/column position, because the LLM-generated
event descriptions must be *validated*, not silently repaired.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.logic.terms import Compound, Constant, Term, Variable

__all__ = [
    "ParseError",
    "Literal",
    "Rule",
    "Token",
    "tokenize",
    "parse_term",
    "parse_rule",
    "parse_program",
    "clause_lines",
    "LIST_FUNCTOR",
    "COMPARISON_OPERATORS",
]

LIST_FUNCTOR = "list"

#: Infix comparison operators accepted in rule bodies.
COMPARISON_OPERATORS = ("=<", ">=", "=:=", "=\\=", "<", ">")

_SYMBOLIC_TOKENS = (
    ":-",
    "=<",
    ">=",
    "=:=",
    "=\\=",
    "\\+",
    "(",
    ")",
    "[",
    "]",
    ",",
    ".",
    "=",
    "<",
    ">",
)


class ParseError(ValueError):
    """Raised when the input text is not in the supported RTEC dialect."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__("%s (line %d, column %d)" % (message, line, column))
        self.line = line
        self.column = column


@dataclass(frozen=True)
class Token:
    kind: str  # 'atom' | 'var' | 'number' | 'punct' | 'end'
    text: str
    line: int
    column: int


@dataclass(frozen=True)
class Literal:
    """A rule-body condition: a term with an optional negation-by-failure flag."""

    term: Term
    negated: bool = False

    def __repr__(self) -> str:
        return ("not %r" % (self.term,)) if self.negated else repr(self.term)


@dataclass(frozen=True)
class Rule:
    """A rule ``head :- body`` (facts have an empty body)."""

    head: Term
    body: Tuple[Literal, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))

    @property
    def is_fact(self) -> bool:
        return not self.body

    def __repr__(self) -> str:
        if self.is_fact:
            return "%r." % (self.head,)
        return "%r :- %s." % (self.head, ", ".join(repr(b) for b in self.body))


def tokenize(text: str) -> List[Token]:
    """Split ``text`` into tokens, dropping whitespace and ``%`` comments."""
    tokens: List[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(text)

    def advance(count: int) -> None:
        nonlocal i, line, col
        for _ in range(count):
            if i < n and text[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            advance(1)
            continue
        if ch == "%":
            while i < n and text[i] != "\n":
                advance(1)
            continue
        if ch == "'":
            start_line, start_col = line, col
            advance(1)
            start = i
            while i < n and text[i] != "'":
                advance(1)
            if i >= n:
                raise ParseError("unterminated quoted atom", start_line, start_col)
            tokens.append(Token("atom", text[start:i], start_line, start_col))
            advance(1)
            continue
        if ch.isdigit() or (
            ch == "-" and i + 1 < n and text[i + 1].isdigit() and _starts_number(tokens)
        ):
            start_line, start_col = line, col
            start = i
            advance(1)
            while i < n and (text[i].isdigit() or text[i] == "."):
                # A '.' ends the number unless followed by another digit
                # (so that 'f(3).' parses as number 3 then '.').
                if text[i] == "." and not (i + 1 < n and text[i + 1].isdigit()):
                    break
                advance(1)
            tokens.append(Token("number", text[start:i], start_line, start_col))
            continue
        if ch.isalpha() or ch == "_":
            start_line, start_col = line, col
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                advance(1)
            word = text[start:i]
            kind = "var" if (word[0].isupper() or word[0] == "_") else "atom"
            tokens.append(Token(kind, word, start_line, start_col))
            continue
        matched = False
        for sym in _SYMBOLIC_TOKENS:
            if text.startswith(sym, i):
                tokens.append(Token("punct", sym, line, col))
                advance(len(sym))
                matched = True
                break
        if not matched:
            raise ParseError("unexpected character %r" % ch, line, col)
    tokens.append(Token("end", "", line, col))
    return tokens


def _starts_number(tokens: Sequence[Token]) -> bool:
    """True when a ``-`` at the current position begins a negative number literal."""
    if not tokens:
        return True
    prev = tokens[-1]
    return prev.kind == "punct" and prev.text in ("(", "[", ",") + COMPARISON_OPERATORS


class _Parser:
    def __init__(self, tokens: Sequence[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ---------------------------------------------------

    def peek(self) -> Token:
        return self._tokens[self._pos]

    def next(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind != "end":
            self._pos += 1
        return tok

    def expect(self, text: str) -> Token:
        tok = self.peek()
        if tok.kind == "punct" and tok.text == text:
            return self.next()
        raise ParseError(
            "expected %r, found %r" % (text, tok.text or "<end>"), tok.line, tok.column
        )

    def at(self, text: str) -> bool:
        tok = self.peek()
        return tok.kind == "punct" and tok.text == text

    # -- grammar ---------------------------------------------------------

    def parse_term(self) -> Term:
        """term := primary (('=' | comparison-op) primary)?"""
        left = self.parse_primary()
        tok = self.peek()
        if tok.kind == "punct" and (tok.text == "=" or tok.text in COMPARISON_OPERATORS):
            self.next()
            right = self.parse_primary()
            return Compound(tok.text, (left, right))
        return left

    def parse_primary(self) -> Term:
        tok = self.peek()
        if tok.kind == "number":
            self.next()
            if "." in tok.text:
                return Constant(float(tok.text))
            return Constant(int(tok.text))
        if tok.kind == "var":
            self.next()
            return Variable(tok.text)
        if tok.kind == "atom":
            self.next()
            if self.at("("):
                self.next()
                args = self.parse_term_list(")")
                self.expect(")")
                return Compound(tok.text, tuple(args))
            return Constant(tok.text)
        if self.at("["):
            self.next()
            if self.at("]"):
                self.next()
                return Constant("[]")
            items = self.parse_term_list("]")
            self.expect("]")
            return Compound(LIST_FUNCTOR, tuple(items))
        raise ParseError(
            "expected a term, found %r" % (tok.text or "<end>"), tok.line, tok.column
        )

    def parse_term_list(self, closer: str) -> List[Term]:
        items = [self.parse_term()]
        while self.at(","):
            self.next()
            items.append(self.parse_term())
        return items

    def parse_literal(self) -> Literal:
        tok = self.peek()
        negated = False
        if (tok.kind == "atom" and tok.text == "not") or (
            tok.kind == "punct" and tok.text == "\\+"
        ):
            # 'not' only acts as negation when followed by something that can
            # start a term inside the same literal; 'not(...)' and 'not foo'
            # both negate.
            self.next()
            negated = True
            if self.at("("):
                self.next()
                term = self.parse_term()
                self.expect(")")
                return Literal(term, negated=True)
        term = self.parse_term()
        return Literal(term, negated=negated)

    def parse_rule(self) -> Rule:
        head = self.parse_term()
        if self.at("."):
            self.next()
            return Rule(head)
        self.expect(":-")
        body = [self.parse_literal()]
        while self.at(","):
            self.next()
            body.append(self.parse_literal())
        self.expect(".")
        return Rule(head, tuple(body))

    def parse_program(self) -> List[Rule]:
        rules: List[Rule] = []
        while self.peek().kind != "end":
            rules.append(self.parse_rule())
        return rules


def parse_term(text: str) -> Term:
    """Parse a single term, e.g. ``"happensAt(entersArea(Vl, A), T)"``."""
    parser = _Parser(tokenize(text))
    term = parser.parse_term()
    tok = parser.peek()
    if tok.kind != "end":
        raise ParseError("trailing input after term: %r" % tok.text, tok.line, tok.column)
    return term


def parse_rule(text: str) -> Rule:
    """Parse a single rule or fact, terminated by ``.``."""
    parser = _Parser(tokenize(text))
    rule = parser.parse_rule()
    tok = parser.peek()
    if tok.kind != "end":
        raise ParseError("trailing input after rule: %r" % tok.text, tok.line, tok.column)
    return rule


def parse_program(text: str) -> List[Rule]:
    """Parse a whole event description (a sequence of rules and facts)."""
    return _Parser(tokenize(text)).parse_program()


def clause_lines(text: str) -> List[int]:
    """The 1-based source line of each clause of a program, in order.

    Clause ``i`` of the token stream corresponds to rule ``i`` of
    :func:`parse_program` (the parser neither drops nor reorders clauses),
    so diagnostics carrying a rule index can be mapped back to source
    lines. In this dialect the ``.`` token only ever terminates a clause
    (floats are single number tokens, lists use brackets), so no nesting
    tracking is needed. Tolerant of malformed text: any tokenisation error
    yields an empty mapping.
    """
    lines: List[int] = []
    expecting_clause = True
    try:
        tokens = tokenize(text)
    except ParseError:
        return []
    for token in tokens:
        if token.kind == "end":
            break
        if expecting_clause:
            lines.append(token.line)
            expecting_clause = False
        if token.kind == "punct" and token.text == ".":
            expecting_clause = True
    return lines
