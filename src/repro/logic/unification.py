"""Unification and substitutions over :mod:`repro.logic.terms`.

The RTEC engine grounds rule bodies by unifying body literals against ground
facts (events, cached fluent intervals, background knowledge). Substitutions
are immutable mappings from variables to terms; :func:`unify` extends a
substitution or returns ``None`` on failure.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.logic.terms import Compound, Constant, Term, Variable

__all__ = ["Substitution", "unify", "apply_substitution", "rename_variables"]


class Substitution:
    """An immutable variable binding environment.

    Bindings are fully dereferenced on construction: a bound variable always
    maps to a term whose variables are unbound in this substitution.
    """

    __slots__ = ("_bindings",)

    def __init__(self, bindings: Optional[Dict[Variable, Term]] = None) -> None:
        self._bindings: Dict[Variable, Term] = dict(bindings or {})

    @classmethod
    def _wrap(cls, bindings: Dict[Variable, Term]) -> "Substitution":
        """Adopt ``bindings`` without copying. Internal: the caller must not
        mutate the dict afterwards and must pass fully dereferenced terms."""
        new = cls.__new__(cls)
        new._bindings = bindings
        return new

    def lookup(self, var: Variable) -> Optional[Term]:
        return self._bindings.get(var)

    def bind(self, var: Variable, term: Term) -> "Substitution":
        """Return a new substitution with ``var`` bound to ``term``."""
        new = dict(self._bindings)
        new[var] = term
        return Substitution(new)

    def resolve(self, term: Term) -> Term:
        """Apply this substitution to ``term``, recursively."""
        return apply_substitution(term, self)

    def items(self):
        return self._bindings.items()

    def __len__(self) -> int:
        return len(self._bindings)

    def __contains__(self, var: Variable) -> bool:
        return var in self._bindings

    def __repr__(self) -> str:
        pairs = ", ".join("%r=%r" % (k, v) for k, v in sorted(
            self._bindings.items(), key=lambda kv: kv[0].name))
        return "{%s}" % pairs


def _walk(term: Term, subst: Substitution) -> Term:
    """Dereference ``term`` through variable bindings (one level of chains)."""
    while isinstance(term, Variable):
        bound = subst.lookup(term)
        if bound is None:
            return term
        term = bound
    return term


def apply_substitution(term: Term, subst: Substitution) -> Term:
    """Replace every bound variable in ``term`` by its binding, recursively."""
    if not subst._bindings:
        return term
    term = _walk(term, subst)
    if isinstance(term, Compound):
        new_args = tuple(apply_substitution(a, subst) for a in term.args)
        if all(n is o for n, o in zip(new_args, term.args)):
            return term
        return Compound(term.functor, new_args)
    return term


def unify(left: Term, right: Term, subst: Optional[Substitution] = None) -> Optional[Substitution]:
    """Unify two terms under an existing substitution.

    Returns the extended substitution, or ``None`` when the terms do not
    unify. Numbers unify when numerically equal (``2`` unifies with ``2.0``),
    matching arithmetic comparison semantics elsewhere in the engine.
    """
    if subst is None:
        subst = Substitution()
    left = _walk(left, subst)
    right = _walk(right, subst)
    if left is right:
        return subst
    if isinstance(left, Variable):
        if isinstance(right, Variable) and right == left:
            return subst
        return subst.bind(left, right)
    if isinstance(right, Variable):
        return subst.bind(right, left)
    if isinstance(left, Constant) and isinstance(right, Constant):
        if left.value == right.value:
            return subst
        if left.is_number and right.is_number and float(left.value) == float(right.value):
            return subst
        return None
    if isinstance(left, Compound) and isinstance(right, Compound):
        if left.functor != right.functor or left.arity != right.arity:
            return None
        for l_arg, r_arg in zip(left.args, right.args):
            subst = unify(l_arg, r_arg, subst)
            if subst is None:
                return None
        return subst
    return None


def rename_variables(term: Term, suffix: str) -> Term:
    """Append ``suffix`` to every variable name in ``term`` (rule standardisation)."""
    if isinstance(term, Variable):
        return Variable(term.name + suffix)
    if isinstance(term, Compound):
        return Compound(term.functor, tuple(rename_variables(a, suffix) for a in term.args))
    return term
