"""First-order term representation for RTEC rules.

Terms come in three shapes:

* :class:`Variable` — a logic variable (``Vessel``, ``T``). Identified by
  name within a rule.
* :class:`Constant` — an atom (``fishing``), a number (``23``, ``0.5``) or a
  string. Atoms are stored as ``str``, numbers as ``int``/``float``.
* :class:`Compound` — a functor applied to one or more argument terms
  (``entersArea(Vessel, Area)``). A fluent-value pair ``F = V`` is the
  compound ``'='(F, V)``, mirroring the prefix reading used by the paper
  (Example 4.10).

All terms are immutable and hashable so they can be used as dictionary keys
(e.g. to index maximal-interval caches by ground FVP).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple, Union

__all__ = [
    "Term",
    "Variable",
    "Constant",
    "Compound",
    "fvp",
    "make_atom",
    "intern_constant",
    "is_fvp",
    "is_ground",
    "term_variables",
    "walk_subterms",
]


@dataclass(frozen=True)
class Variable:
    """A logic variable, e.g. ``Vessel`` or ``T``."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Constant:
    """An atom, number or string constant.

    ``value`` holds a ``str`` for atoms (``fishing``) and an ``int`` or
    ``float`` for numbers.
    """

    value: Union[str, int, float]

    def __repr__(self) -> str:
        return str(self.value)

    @property
    def is_number(self) -> bool:
        return isinstance(self.value, (int, float))


@dataclass(frozen=True)
class Compound:
    """A functor with arguments, e.g. ``entersArea(Vessel, Area)``."""

    functor: str
    args: Tuple["Term", ...]

    def __post_init__(self) -> None:
        if not self.args:
            raise ValueError(
                "Compound terms need at least one argument; "
                "use Constant for zero-arity atoms"
            )
        object.__setattr__(self, "args", tuple(self.args))

    @property
    def arity(self) -> int:
        return len(self.args)

    def __repr__(self) -> str:
        return "%s(%s)" % (self.functor, ", ".join(repr(a) for a in self.args))


Term = Union[Variable, Constant, Compound]


def make_atom(functor: str, *args: Term) -> Term:
    """Build ``functor(*args)``, or a plain atom when no args are given."""
    if not args:
        return Constant(functor)
    return Compound(functor, tuple(args))


_INTERNED: dict = {}


def intern_constant(value: Union[str, int, float]) -> Constant:
    """A shared :class:`Constant` for ``value``.

    Hot paths wrap the same atoms and time-points into constants millions of
    times per run; interning makes those wrappers identical objects so
    unification's ``left is right`` fast path and dict lookups hit more often.
    Keyed by type as well as value so ``2`` and ``2.0`` keep distinct reprs.
    """
    key = (value.__class__, value)
    constant = _INTERNED.get(key)
    if constant is None:
        constant = _INTERNED[key] = Constant(value)
    return constant


def fvp(fluent: Term, value: Term) -> Compound:
    """Build the fluent-value pair ``fluent = value`` as ``'='(fluent, value)``."""
    return Compound("=", (fluent, value))


def is_fvp(term: Term) -> bool:
    """True when ``term`` has the shape ``F = V``."""
    return isinstance(term, Compound) and term.functor == "=" and term.arity == 2


def is_ground(term: Term) -> bool:
    """True when ``term`` contains no variables."""
    if isinstance(term, Variable):
        return False
    if isinstance(term, Constant):
        return True
    return all(is_ground(arg) for arg in term.args)


def term_variables(term: Term) -> "list[Variable]":
    """All variables of ``term`` in depth-first, left-to-right order, deduplicated."""
    seen = []
    for sub in walk_subterms(term):
        if isinstance(sub, Variable) and sub not in seen:
            seen.append(sub)
    return seen


def walk_subterms(term: Term) -> Iterator[Term]:
    """Yield ``term`` and every subterm, depth-first and left-to-right."""
    yield term
    if isinstance(term, Compound):
        for arg in term.args:
            yield from walk_subterms(arg)
