"""Pretty-printing of terms and rules back to RTEC concrete syntax.

``parse_rule(rule_to_str(r)) == r`` holds for every rule in the supported
dialect (a property checked by the test suite), which lets event
descriptions round-trip through text — the form in which simulated LLMs
emit them.
"""

from __future__ import annotations

from repro.logic.parser import COMPARISON_OPERATORS, LIST_FUNCTOR, Literal, Rule
from repro.logic.terms import Constant, Term, Variable

__all__ = ["term_to_str", "literal_to_str", "rule_to_str", "program_to_str"]

_INFIX = ("=",) + COMPARISON_OPERATORS


def term_to_str(term: Term) -> str:
    """Render a term in RTEC concrete syntax."""
    if isinstance(term, Variable):
        return term.name
    if isinstance(term, Constant):
        if isinstance(term.value, str) and not _is_plain_atom(term.value):
            return "'%s'" % term.value
        return str(term.value)
    if term.functor == LIST_FUNCTOR:
        return "[%s]" % ", ".join(term_to_str(a) for a in term.args)
    if term.functor in _INFIX and term.arity == 2:
        return "%s%s%s" % (term_to_str(term.args[0]), term.functor, term_to_str(term.args[1]))
    return "%s(%s)" % (term.functor, ", ".join(term_to_str(a) for a in term.args))


def _is_plain_atom(name: str) -> bool:
    if name == "[]":
        return True
    if not name or not (name[0].islower()):
        return False
    return all(ch.isalnum() or ch == "_" for ch in name)


def literal_to_str(literal: Literal) -> str:
    text = term_to_str(literal.term)
    return "not %s" % text if literal.negated else text


def rule_to_str(rule: Rule) -> str:
    """Render a rule with one condition per line, RTEC style."""
    head = term_to_str(rule.head)
    if rule.is_fact:
        return "%s." % head
    body = ",\n    ".join(literal_to_str(lit) for lit in rule.body)
    return "%s :-\n    %s." % (head, body)


def program_to_str(rules) -> str:
    """Render a whole event description, one blank line between rules."""
    return "\n\n".join(rule_to_str(rule) for rule in rules) + "\n"
