"""Logic-programming substrate shared by the RTEC engine and the similarity metric.

This package provides the term representation (:mod:`repro.logic.terms`), a
Prolog-style parser for RTEC event descriptions (:mod:`repro.logic.parser`),
unification and substitution machinery (:mod:`repro.logic.unification`), a
static knowledge base of atemporal facts (:mod:`repro.logic.knowledge`), and
pretty-printing back to RTEC concrete syntax (:mod:`repro.logic.pretty`).
"""

from repro.logic.terms import (
    Compound,
    Constant,
    Term,
    Variable,
    fvp,
    is_fvp,
    make_atom,
    term_variables,
)
from repro.logic.parser import (
    ParseError,
    parse_program,
    parse_rule,
    parse_term,
)
from repro.logic.unification import Substitution, unify
from repro.logic.knowledge import KnowledgeBase
from repro.logic.pretty import term_to_str, rule_to_str

__all__ = [
    "Compound",
    "Constant",
    "Term",
    "Variable",
    "fvp",
    "is_fvp",
    "make_atom",
    "term_variables",
    "ParseError",
    "parse_program",
    "parse_rule",
    "parse_term",
    "Substitution",
    "unify",
    "KnowledgeBase",
    "term_to_str",
    "rule_to_str",
]
